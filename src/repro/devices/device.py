"""Device, coupling-map, native-gate-set, and calibration models.

A :class:`Device` bundles everything a compilation flow needs to know about
a target QPU: which gates it executes natively, which qubit pairs may host
two-qubit gates, and calibration data (gate/readout error rates) used by the
expected-fidelity reward function.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..circuit.circuit import QuantumCircuit

__all__ = ["CouplingMap", "NativeGateSet", "Calibration", "Device"]


class CouplingMap:
    """Undirected qubit connectivity graph with cached all-pairs distances."""

    def __init__(self, num_qubits: int, edges: list[tuple[int, int]] | None = None):
        self.num_qubits = int(num_qubits)
        self._adjacency: list[set[int]] = [set() for _ in range(self.num_qubits)]
        self._edges: set[tuple[int, int]] = set()
        self._distance: np.ndarray | None = None
        for a, b in edges or []:
            self.add_edge(a, b)

    # -- construction -------------------------------------------------------------

    def add_edge(self, a: int, b: int) -> None:
        a, b = int(a), int(b)
        if a == b:
            raise ValueError("self-loops are not allowed in a coupling map")
        if not (0 <= a < self.num_qubits and 0 <= b < self.num_qubits):
            raise ValueError(f"edge ({a}, {b}) out of range for {self.num_qubits} qubits")
        self._adjacency[a].add(b)
        self._adjacency[b].add(a)
        self._edges.add((min(a, b), max(a, b)))
        self._distance = None

    @classmethod
    def all_to_all(cls, num_qubits: int) -> "CouplingMap":
        cmap = cls(num_qubits)
        for a in range(num_qubits):
            for b in range(a + 1, num_qubits):
                cmap.add_edge(a, b)
        return cmap

    # -- queries ------------------------------------------------------------------

    @property
    def edges(self) -> list[tuple[int, int]]:
        return sorted(self._edges)

    def neighbors(self, qubit: int) -> set[int]:
        return set(self._adjacency[qubit])

    def degree(self, qubit: int) -> int:
        return len(self._adjacency[qubit])

    def are_connected(self, a: int, b: int) -> bool:
        return (min(a, b), max(a, b)) in self._edges

    def is_fully_connected(self) -> bool:
        max_edges = self.num_qubits * (self.num_qubits - 1) // 2
        return len(self._edges) == max_edges

    def distance_matrix(self) -> np.ndarray:
        """All-pairs shortest-path distances (BFS, unreachable pairs = inf)."""
        if self._distance is None:
            n = self.num_qubits
            dist = np.full((n, n), np.inf)
            for src in range(n):
                dist[src, src] = 0
                frontier = [src]
                level = 0
                seen = {src}
                while frontier:
                    level += 1
                    nxt = []
                    for node in frontier:
                        for nb in self._adjacency[node]:
                            if nb not in seen:
                                seen.add(nb)
                                dist[src, nb] = level
                                nxt.append(nb)
                    frontier = nxt
            self._distance = dist
        return self._distance

    def distance(self, a: int, b: int) -> float:
        return float(self.distance_matrix()[a, b])

    def is_connected_graph(self) -> bool:
        if self.num_qubits == 0:
            return True
        return bool(np.all(np.isfinite(self.distance_matrix()[0])))

    def shortest_path(self, a: int, b: int) -> list[int]:
        """One shortest path from ``a`` to ``b`` (inclusive)."""
        if a == b:
            return [a]
        prev: dict[int, int] = {a: a}
        frontier = [a]
        while frontier:
            nxt = []
            for node in frontier:
                for nb in sorted(self._adjacency[node]):
                    if nb not in prev:
                        prev[nb] = node
                        if nb == b:
                            path = [b]
                            while path[-1] != a:
                                path.append(prev[path[-1]])
                            return list(reversed(path))
                        nxt.append(nb)
            frontier = nxt
        raise ValueError(f"qubits {a} and {b} are not connected")

    def subgraph_connected(self, qubits: set[int]) -> bool:
        """Check whether ``qubits`` induce a connected subgraph."""
        if not qubits:
            return True
        qubits = set(qubits)
        start = next(iter(qubits))
        seen = {start}
        frontier = [start]
        while frontier:
            nxt = []
            for node in frontier:
                for nb in self._adjacency[node]:
                    if nb in qubits and nb not in seen:
                        seen.add(nb)
                        nxt.append(nb)
            frontier = nxt
        return seen == qubits


@dataclass(frozen=True)
class NativeGateSet:
    """The gates a device executes natively."""

    single_qubit: tuple[str, ...]
    two_qubit: tuple[str, ...]
    basis_1q: str = "rz_sx"

    @property
    def names(self) -> frozenset[str]:
        return frozenset(self.single_qubit) | frozenset(self.two_qubit)

    def is_native(self, gate_name: str) -> bool:
        if gate_name in ("barrier", "measure", "reset", "id"):
            return True
        return gate_name in self.names


@dataclass
class Calibration:
    """Synthetic calibration data used by the expected-fidelity reward.

    ``two_qubit_error`` maps an undirected qubit pair to its entangling-gate
    error rate; pairs missing from the map fall back to ``default_two_qubit_error``.
    """

    single_qubit_error: dict[int, float] = field(default_factory=dict)
    two_qubit_error: dict[tuple[int, int], float] = field(default_factory=dict)
    readout_error: dict[int, float] = field(default_factory=dict)
    t1_us: dict[int, float] = field(default_factory=dict)
    t2_us: dict[int, float] = field(default_factory=dict)
    default_single_qubit_error: float = 5e-4
    default_two_qubit_error: float = 1e-2
    default_readout_error: float = 2e-2

    def gate_error(self, qubits: tuple[int, ...]) -> float:
        if len(qubits) == 1:
            return self.single_qubit_error.get(qubits[0], self.default_single_qubit_error)
        if len(qubits) == 2:
            key = (min(qubits), max(qubits))
            return self.two_qubit_error.get(key, self.default_two_qubit_error)
        # Multi-qubit gates should have been decomposed; charge them as a
        # pessimistic product of pairwise errors.
        return min(1.0, self.default_two_qubit_error * (len(qubits) - 1) * 2)

    def measurement_error(self, qubit: int) -> float:
        return self.readout_error.get(qubit, self.default_readout_error)

    @classmethod
    def synthetic(
        cls,
        coupling: CouplingMap,
        *,
        seed: int,
        single_qubit_error: float,
        two_qubit_error: float,
        readout_error: float,
        spread: float = 0.35,
        t1_us: float = 100.0,
        t2_us: float = 90.0,
    ) -> "Calibration":
        """Generate deterministic per-qubit/per-edge calibration around target means."""
        rng = np.random.default_rng(seed)

        def jitter(mean: float, size: int) -> np.ndarray:
            return np.clip(mean * rng.lognormal(0.0, spread, size), mean * 0.2, mean * 5.0)

        n = coupling.num_qubits
        q1 = jitter(single_qubit_error, n)
        ro = jitter(readout_error, n)
        t1 = jitter(t1_us, n)
        t2 = np.minimum(jitter(t2_us, n), 2 * t1)
        edges = coupling.edges
        q2 = jitter(two_qubit_error, len(edges))
        return cls(
            single_qubit_error={i: float(q1[i]) for i in range(n)},
            two_qubit_error={edge: float(q2[i]) for i, edge in enumerate(edges)},
            readout_error={i: float(ro[i]) for i in range(n)},
            t1_us={i: float(t1[i]) for i in range(n)},
            t2_us={i: float(t2[i]) for i in range(n)},
            default_single_qubit_error=single_qubit_error,
            default_two_qubit_error=two_qubit_error,
            default_readout_error=readout_error,
        )


@dataclass(frozen=True)
class Device:
    """A target quantum device: platform, size, native gates, topology, calibration."""

    name: str
    platform: str
    num_qubits: int
    gate_set: NativeGateSet
    coupling_map: CouplingMap
    calibration: Calibration
    description: str = ""

    # -- constraint checks used by the compilation MDP ------------------------------

    def supports_circuit_width(self, circuit: QuantumCircuit) -> bool:
        return len(circuit.active_qubits() or {0}) <= self.num_qubits and (
            circuit.num_qubits <= self.num_qubits
            or len(circuit.active_qubits()) <= self.num_qubits
        )

    def gates_native(self, circuit: QuantumCircuit) -> bool:
        """Check condition (1): the circuit only uses native gates."""
        return all(self.gate_set.is_native(name) for name in circuit.gate_names())

    def mapping_satisfied(self, circuit: QuantumCircuit) -> bool:
        """Check condition (2): all 2q interactions respect the coupling map."""
        if circuit.num_qubits > self.num_qubits:
            return False
        if self.coupling_map.is_fully_connected():
            return all(
                len(instr.qubits) <= 2
                for instr in circuit
                if instr.name != "barrier" and instr.gate.is_unitary
            )
        for instr in circuit:
            if instr.name == "barrier" or not instr.gate.is_unitary:
                continue
            if len(instr.qubits) > 2:
                return False
            if len(instr.qubits) == 2 and not self.coupling_map.are_connected(*instr.qubits):
                return False
        return True

    def is_executable(self, circuit: QuantumCircuit) -> bool:
        """Both compilation constraints hold: native gates and valid mapping."""
        return self.gates_native(circuit) and self.mapping_satisfied(circuit)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Device({self.name!r}, {self.num_qubits} qubits, platform={self.platform!r})"
