"""Coupling-map topology generators.

The concrete device definitions in :mod:`repro.devices.library` are built
from these generators.  The IBM heavy-hex and Rigetti Aspen lattices are
generated programmatically to match the published qubit counts and
connectivity style (see DESIGN.md for the substitution rationale).
"""

from __future__ import annotations

from .device import CouplingMap

__all__ = [
    "line_map",
    "ring_map",
    "grid_map",
    "all_to_all_map",
    "heavy_hex_map",
    "ibm_falcon_27_map",
    "ibm_eagle_127_map",
    "aspen_map",
]


def line_map(num_qubits: int) -> CouplingMap:
    """Qubits on a line: i -- i+1."""
    return CouplingMap(num_qubits, [(i, i + 1) for i in range(num_qubits - 1)])


def ring_map(num_qubits: int) -> CouplingMap:
    """Qubits on a ring."""
    edges = [(i, (i + 1) % num_qubits) for i in range(num_qubits)]
    if num_qubits <= 2:
        edges = [(0, 1)] if num_qubits == 2 else []
    return CouplingMap(num_qubits, edges)


def grid_map(rows: int, cols: int) -> CouplingMap:
    """Rectangular grid of rows x cols qubits."""
    edges = []
    for r in range(rows):
        for c in range(cols):
            q = r * cols + c
            if c + 1 < cols:
                edges.append((q, q + 1))
            if r + 1 < rows:
                edges.append((q, q + cols))
    return CouplingMap(rows * cols, edges)


def all_to_all_map(num_qubits: int) -> CouplingMap:
    """Fully connected topology (trapped-ion style)."""
    return CouplingMap.all_to_all(num_qubits)


def ibm_falcon_27_map() -> CouplingMap:
    """27-qubit heavy-hex lattice in the style of IBM Falcon (ibmq_montreal)."""
    edges = [
        (0, 1), (1, 2), (1, 4), (2, 3), (3, 5), (4, 7), (5, 8), (6, 7),
        (7, 10), (8, 9), (8, 11), (10, 12), (11, 14), (12, 13), (12, 15),
        (13, 14), (14, 16), (15, 18), (16, 19), (17, 18), (18, 21), (19, 20),
        (19, 22), (21, 23), (22, 25), (23, 24), (24, 25), (25, 26),
    ]
    return CouplingMap(27, edges)


def heavy_hex_map(num_long_rows: int, row_length: int) -> CouplingMap:
    """Generic heavy-hex lattice: long rows of qubits joined by bridge qubits.

    Long rows are chains of ``row_length`` qubits; between consecutive long
    rows sits a sparse row of bridge qubits, each connecting one qubit of the
    upper row to the qubit directly below it in the lower row.  Bridge
    columns alternate (0, 4, 8, ... / 2, 6, 10, ...) between gaps, which is
    the pattern of IBM's heavy-hex devices.
    """
    edges: list[tuple[int, int]] = []
    row_start: list[int] = []
    next_index = 0
    # allocate long rows
    for _ in range(num_long_rows):
        row_start.append(next_index)
        next_index += row_length
    bridge_start: list[int] = []
    bridge_columns: list[list[int]] = []
    for gap in range(num_long_rows - 1):
        offset = 0 if gap % 2 == 0 else 2
        columns = list(range(offset, row_length, 4))
        bridge_columns.append(columns)
        bridge_start.append(next_index)
        next_index += len(columns)

    cmap = CouplingMap(next_index)
    for r in range(num_long_rows):
        base = row_start[r]
        for c in range(row_length - 1):
            cmap.add_edge(base + c, base + c + 1)
    for gap in range(num_long_rows - 1):
        upper = row_start[gap]
        lower = row_start[gap + 1]
        for i, col in enumerate(bridge_columns[gap]):
            bridge = bridge_start[gap] + i
            cmap.add_edge(upper + col, bridge)
            cmap.add_edge(bridge, lower + col)
    _ = edges
    return cmap


def ibm_eagle_127_map() -> CouplingMap:
    """127-qubit heavy-hex lattice in the style of IBM Eagle (ibm_washington).

    Seven long rows of 15 qubits plus six bridge rows of 4 qubits each gives
    ``7 * 15 + 6 * 4 = 129``; the corner qubits of the first and last row are
    trimmed to land on the published 127-qubit count.
    """
    base = heavy_hex_map(7, 15)
    # Trim two corner qubits (first of row 0, last of row 6) by rebuilding the
    # map without them and compacting indices.
    removed = {0, 6 * 15 + 14}
    keep = [q for q in range(base.num_qubits) if q not in removed]
    relabel = {old: new for new, old in enumerate(keep)}
    trimmed = CouplingMap(len(keep))
    for a, b in base.edges:
        if a in removed or b in removed:
            continue
        trimmed.add_edge(relabel[a], relabel[b])
    return trimmed


def aspen_map(num_octagons_per_row: int = 5, num_rows: int = 2) -> CouplingMap:
    """Rigetti Aspen-style lattice of connected octagonal rings.

    Each octagon is an 8-qubit ring; octagons in the same row share two
    horizontal edges with their right neighbour, and octagons in adjacent
    rows share two vertical edges.  With 5 octagons per row and 2 rows this
    yields the 80-qubit Aspen-M-2 footprint.
    """
    num_qubits = 8 * num_octagons_per_row * num_rows
    cmap = CouplingMap(num_qubits)

    def octagon_base(row: int, col: int) -> int:
        return (row * num_octagons_per_row + col) * 8

    for row in range(num_rows):
        for col in range(num_octagons_per_row):
            base = octagon_base(row, col)
            for k in range(8):
                cmap.add_edge(base + k, base + (k + 1) % 8)
            if col + 1 < num_octagons_per_row:
                right = octagon_base(row, col + 1)
                cmap.add_edge(base + 1, right + 6)
                cmap.add_edge(base + 2, right + 5)
            if row + 1 < num_rows:
                below = octagon_base(row + 1, col)
                cmap.add_edge(base + 3, below + 0)
                cmap.add_edge(base + 4, below + 7)
    return cmap
