"""Preset compilation pipelines in the style of Qiskit and TKET.

These pipelines are the comparison points of the paper's evaluation: every
benchmark circuit is also compiled with "Qiskit at its highest optimization
level (O3)" and "TKET at its highest optimization level (O2)".  They are
assembled from the same pass implementations that the RL agent can choose
from, with pass selections that follow the published structure of the two
SDKs' preset pipelines.

Since the pass-registry refactor the levels are *pure data*:
:data:`QISKIT_LEVELS` and :data:`TKET_LEVELS` map each optimization level to
a tuple of :class:`StageSpec`\\ s — stage names, pass *names* and constructor
kwargs, nothing instantiated — and :func:`preset_pass_manager` resolves the
specs through the pass registry (:mod:`repro.passes.registry`) into a ready
:class:`~repro.pipeline.PassManager`.  Because stage slots are names, any
slot can be swapped for any registered pass of the matching role::

    manager = preset_pass_manager("qiskit", 3, overrides={"routing": "tket-routing"})

Both the pipeline functions here and the registered API backends
(:mod:`repro.api.backends`) execute these same schedules — there is exactly
one definition of what "qiskit-o3" means, and the golden-trace suite pins it.

The public entry point for end users is the unified facade:
``repro.compile(circuit, backend="qiskit-o3", device=...)`` (every level is
registered as ``qiskit-o0`` ... ``qiskit-o3`` and ``tket-o0`` ... ``tket-o2``),
with ``pass_overrides=`` riding through the facade, the compile service, and
the HTTP gateway down to :func:`preset_pass_manager`'s ``overrides``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..circuit.circuit import QuantumCircuit
from ..devices.device import Device
from ..passes import PassRole, available_passes, pass_role, resolve_pass
from ..passes.base import PassContext
from ..pipeline import AnalysisCache, PassManager, RepeatUntilStable, Stage

__all__ = [
    "QISKIT_LEVELS",
    "TKET_LEVELS",
    "StageSpec",
    "apply_stage_overrides",
    "compile_qiskit_style",
    "compile_tket_style",
    "iterate_stage",
    "preset_pass_manager",
    "qiskit_pipeline",
    "run_preset_manager",
    "tket_pipeline",
]


def _needs_rebase(circuit: QuantumCircuit, context: PassContext) -> bool:
    """Finalisation condition: the circuit still contains non-native gates."""
    return not context.require_device().gates_native(circuit)


#: stage conditions as data — specs name their condition so the level tables
#: stay serialisable
_CONDITIONS = {"needs_rebase": _needs_rebase}


@dataclass(frozen=True)
class StageSpec:
    """One stage of a preset schedule, as pure data.

    ``passes`` holds registry *specs* — a pass name or a ``(name, kwargs)``
    pair — resolved through :func:`repro.passes.resolve_pass` when the
    schedule is built.  ``role`` declares which
    :class:`~repro.passes.PassRole` may fill this slot; overrides are
    validated against it (``None`` = unconstrained, used by the mixed-role
    finalisation stage).
    """

    name: str
    passes: tuple = ()
    role: str | None = None
    condition: str | None = None
    record_trace: bool = True

    def build(self) -> Stage:
        """Resolve the named passes into a runnable :class:`Stage`."""
        return Stage(
            self.name,
            tuple(resolve_pass(spec) for spec in self.passes),
            condition=_CONDITIONS[self.condition] if self.condition else None,
            record_trace=self.record_trace,
        )


#: the shared clean-up stage: re-synthesise and tidy up only when a
#: post-mapping optimization re-introduced non-native gates.  Not part of the
#: advertised pass trace (it is a safety net, not a scheduled pass), and not
#: role-constrained: it mixes synthesis and optimization passes.
_FINALISE_SPEC = StageSpec(
    "finalise",
    ("basis_translator", "optimize_1q_gates"),
    condition="needs_rebase",
    record_trace=False,
)


def _qiskit_stage_specs(level: int) -> tuple[StageSpec, ...]:
    """The Qiskit-style schedule for one optimization level, as data.

    Stochastic passes carry no seed in their spec: they draw it from the
    ``PassContext`` at run time, which keeps one schedule valid for every
    compilation seed.
    """
    pre: list = []
    if level >= 1:
        pre += [("optimize_1q_gates", {"basis": "u3"}), "inverse_cancellation"]
    if level >= 2:
        pre += ["commutative_cancellation"]
    if level >= 3:
        pre += ["consolidate_blocks", ("optimize_1q_gates", {"basis": "u3"})]

    layout = {0: "trivial_layout", 1: "dense_layout"}.get(level, "sabre_layout")
    routing = {0: "basic_swap", 1: "stochastic_swap"}.get(level, "sabre_swap")

    post: list = []
    if level >= 1:
        post += ["optimize_1q_gates", "cx_cancellation"]
    if level >= 2:
        post += ["commutative_cancellation"]
    if level >= 3:
        post += [
            "consolidate_blocks",
            "basis_translator",
            "optimize_1q_gates",
            "remove_diagonal_before_measure",
        ]

    return (
        StageSpec("pre_optimization", tuple(pre), role=PassRole.OPTIMIZATION),
        StageSpec("synthesis", ("basis_translator",), role=PassRole.SYNTHESIS),
        StageSpec("layout", (layout,), role=PassRole.LAYOUT),
        StageSpec("routing", (routing,), role=PassRole.ROUTING),
        StageSpec("post_optimization", tuple(post), role=PassRole.OPTIMIZATION),
        _FINALISE_SPEC,
    )


def _tket_stage_specs(level: int) -> tuple[StageSpec, ...]:
    """The TKET-style schedule for one optimization level, as data.

    Placement and routing are separate stage slots (the recorded pass trace
    is unaffected — traces name passes, not stages) so ``overrides`` can
    target ``"routing"`` uniformly across both preset styles.
    """
    pre: list = []
    if level == 1:
        pre = [
            "remove_redundancies",
            ("optimize_1q_gates", {"basis": "u3"}),
            "clifford_simp",
        ]
    elif level >= 2:
        pre = ["full_peephole_optimise"]

    placement = "trivial_layout" if level == 0 else "dense_layout"

    post: list = []
    if level >= 1:
        post += ["optimize_1q_gates", "remove_redundancies"]
    if level >= 2:
        post += [
            "clifford_simp",
            "basis_translator",
            "optimize_1q_gates",
            "remove_redundancies",
        ]

    return (
        StageSpec("pre_optimization", tuple(pre), role=PassRole.OPTIMIZATION),
        StageSpec("rebase", ("basis_translator",), role=PassRole.SYNTHESIS),
        StageSpec("placement", (placement,), role=PassRole.LAYOUT),
        StageSpec("routing", ("tket_routing",), role=PassRole.ROUTING),
        StageSpec("post_routing", tuple(post), role=PassRole.OPTIMIZATION),
        _FINALISE_SPEC,
    )


#: level → pure-data stage schedule for each preset style
QISKIT_LEVELS: dict[int, tuple[StageSpec, ...]] = {
    level: _qiskit_stage_specs(level) for level in range(4)
}
TKET_LEVELS: dict[int, tuple[StageSpec, ...]] = {
    level: _tket_stage_specs(level) for level in range(3)
}

_LEVEL_TABLES = {"qiskit": QISKIT_LEVELS, "tket": TKET_LEVELS}

#: the post-mapping optimization stage of each style — the stage the
#: experimental ``-iter`` backends run to a fixed point
_POST_STAGE = {"qiskit": "post_optimization", "tket": "post_routing"}


def _normalise_override(value) -> tuple:
    """One override value → a tuple of pass specs (single spec or a list)."""
    if isinstance(value, str):
        return (value,)
    if (
        isinstance(value, (tuple, list))
        and len(value) == 2
        and isinstance(value[0], str)
        and isinstance(value[1], dict)
    ):
        return (tuple(value),)
    if isinstance(value, (tuple, list)):
        return tuple(
            tuple(item) if isinstance(item, (tuple, list)) else item for item in value
        )
    raise TypeError(
        f"invalid override {value!r}: expected a pass name, a (name, kwargs) "
        "pair, or a list of those"
    )


def _spec_label(spec) -> str:
    """Deterministic short label for one pass spec (cache-token material)."""
    if isinstance(spec, str):
        return spec.replace("-", "_")
    name, kwargs = spec
    if not kwargs:
        return name.replace("-", "_")
    args = ",".join(f"{k}={kwargs[k]}" for k in sorted(kwargs))
    return f"{name.replace('-', '_')}{{{args}}}"


def override_suffix(overrides: dict) -> str:
    """The deterministic name suffix for an overridden schedule.

    Appended to the manager (and derived backend) name, which flows into the
    result-cache token — overridden and base compilations can never collide
    in the shared caches.
    """
    parts = [
        f"{stage}={'+'.join(_spec_label(s) for s in _normalise_override(value))}"
        for stage, value in sorted(overrides.items())
    ]
    return "+" + ",".join(parts)


def apply_stage_overrides(
    specs: tuple[StageSpec, ...],
    overrides: dict,
) -> tuple[StageSpec, ...]:
    """Swap stage slots by name, validating roles against the pass registry.

    ``overrides`` maps a stage name to a pass spec (name, ``(name, kwargs)``
    pair) or a list of specs replacing the stage's pass list.  Unknown stage
    names, unknown pass names, and role mismatches raise with the legal
    choices listed.
    """
    stage_names = [spec.name for spec in specs]
    unknown = sorted(set(overrides) - set(stage_names))
    if unknown:
        raise ValueError(
            f"unknown stage(s) {unknown} in overrides; "
            f"this schedule has stages: {', '.join(stage_names)}"
        )
    out = []
    for spec in specs:
        if spec.name not in overrides:
            out.append(spec)
            continue
        replacements = _normalise_override(overrides[spec.name])
        for item in replacements:
            name = item if isinstance(item, str) else item[0]
            role = pass_role(name)  # raises UnknownPassError, listing names
            if spec.role is not None and role != spec.role:
                raise ValueError(
                    f"pass {name!r} has role {role!r} but stage {spec.name!r} "
                    f"requires role {spec.role!r}; legal substitutes: "
                    f"{', '.join(available_passes(role=spec.role))}"
                )
        out.append(replace(spec, passes=replacements))
    return tuple(out)


def iterate_stage(
    stages: "tuple[Stage, ...]",
    stage_name: str,
    *,
    max_iterations: int = 8,
) -> tuple[Stage, ...]:
    """Wrap one stage's passes in a :class:`RepeatUntilStable` controller.

    Returns a new schedule in which ``stage_name`` runs to quiescence (its
    pass group repeats until the circuit fingerprint stops changing) while
    every other stage is shared, untouched, with the input schedule.  This is
    how the experimental fixed-point preset levels are derived from the
    golden-pinned base levels without altering them.
    """
    out = []
    for stage in stages:
        if stage.name == stage_name and stage.passes:
            controller = RepeatUntilStable(
                stage.passes,
                max_iterations=max_iterations,
                name=f"{stage.name}_fixed_point",
            )
            stage = Stage(
                stage.name,
                (controller,),
                condition=stage.condition,
                record_trace=stage.record_trace,
            )
        out.append(stage)
    return tuple(out)


def preset_pass_manager(
    style: str,
    optimization_level: int,
    *,
    iterate: bool = False,
    cache: AnalysisCache | None = None,
    overrides: dict | None = None,
) -> PassManager:
    """Build the :class:`PassManager` for one preset style and level.

    This is the single source of truth for the preset flows: the pipeline
    functions below and the registered ``qiskit-o*`` / ``tket-o*`` backends
    all run the manager returned here.  With ``iterate=True`` the
    post-mapping optimization stage is wrapped in a fixed-point controller
    (the experimental ``qiskit-o3-iter`` / ``tket-o2-iter`` backends).

    ``overrides`` swaps stage slots by name before the schedule is built —
    ``overrides={"routing": "tket-routing"}`` runs the level with TKET's
    router in the routing slot and everything else untouched.  Values are
    registered pass names, ``(name, kwargs)`` pairs, or lists of those; the
    resolved passes must match the stage's declared role.  Without overrides
    the schedule is byte-identical to the golden-pinned base level.
    """
    try:
        levels = _LEVEL_TABLES[style]
    except KeyError:
        raise ValueError(
            f"unknown preset style {style!r}; expected one of {sorted(_LEVEL_TABLES)}"
        ) from None
    if optimization_level not in levels:
        label = "Qiskit" if style == "qiskit" else "TKET"
        raise ValueError(
            f"{label}-style optimization level must be between 0 and {max(levels)}"
        )
    specs = levels[optimization_level]
    name = f"{style}-o{optimization_level}"
    if overrides:
        specs = apply_stage_overrides(specs, overrides)
        name += override_suffix(overrides)
    stages = tuple(spec.build() for spec in specs)
    if iterate:
        stages = iterate_stage(stages, _POST_STAGE[style])
        name += "-iter"
    return PassManager(stages, name=name, cache=cache)


def run_preset_manager(
    manager: PassManager,
    circuit: QuantumCircuit,
    device: Device,
    seed: int = 0,
) -> tuple[QuantumCircuit, list[str]]:
    """Run a preset schedule and enforce the executable-output contract.

    Shared by the pipeline functions here and the registered preset backends
    so the finalisation invariant (the output must be executable on the
    target device) lives in exactly one place.
    """
    context = PassContext(device=device, seed=seed)
    trace: list[str] = []
    compiled = manager.run(circuit.copy(), context, trace=trace)
    cache = manager.cache
    executable = (
        cache.is_executable(compiled, device) if cache is not None else device.is_executable(compiled)
    )
    if not executable:
        raise RuntimeError(
            f"preset compilation failed to produce an executable circuit for {device.name}"
        )
    return compiled, trace


def _run_preset(
    style: str,
    circuit: QuantumCircuit,
    device: Device,
    optimization_level: int,
    seed: int,
    cache: AnalysisCache | None = None,
) -> tuple[QuantumCircuit, list[str]]:
    manager = preset_pass_manager(style, optimization_level, cache=cache)
    return run_preset_manager(manager, circuit, device, seed)


def qiskit_pipeline(
    circuit: QuantumCircuit,
    device: Device,
    optimization_level: int = 3,
    seed: int = 0,
    *,
    cache: AnalysisCache | None = None,
) -> tuple[QuantumCircuit, list[str]]:
    """Run the Qiskit-style preset pipeline (levels 0-3, default O3).

    Returns the compiled, executable circuit together with the names of the
    applied passes, in order.
    """
    if not 0 <= optimization_level <= 3:
        raise ValueError("Qiskit-style optimization level must be between 0 and 3")
    return _run_preset("qiskit", circuit, device, optimization_level, seed, cache)


def tket_pipeline(
    circuit: QuantumCircuit,
    device: Device,
    optimization_level: int = 2,
    seed: int = 0,
    *,
    cache: AnalysisCache | None = None,
) -> tuple[QuantumCircuit, list[str]]:
    """Run the TKET-style preset pipeline (levels 0-2, default O2).

    Returns the compiled, executable circuit together with the names of the
    applied passes, in order.
    """
    if not 0 <= optimization_level <= 2:
        raise ValueError("TKET-style optimization level must be between 0 and 2")
    return _run_preset("tket", circuit, device, optimization_level, seed, cache)


def compile_qiskit_style(*args, **kwargs):
    """Removed. Use ``repro.compile(circuit, backend="qiskit-o<level>", device=...)``."""
    raise RuntimeError(
        "compile_qiskit_style was removed; use "
        'repro.compile(circuit, backend="qiskit-o<level>", device=device) for the '
        "unified CompilationResult, or qiskit_pipeline(circuit, device, level, seed) "
        "for the raw (circuit, trace) pair"
    )


def compile_tket_style(*args, **kwargs):
    """Removed. Use ``repro.compile(circuit, backend="tket-o<level>", device=...)``."""
    raise RuntimeError(
        "compile_tket_style was removed; use "
        'repro.compile(circuit, backend="tket-o<level>", device=device) for the '
        "unified CompilationResult, or tket_pipeline(circuit, device, level, seed) "
        "for the raw (circuit, trace) pair"
    )
