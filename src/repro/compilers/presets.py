"""Preset compilation pipelines in the style of Qiskit and TKET.

These pipelines are the comparison points of the paper's evaluation: every
benchmark circuit is also compiled with "Qiskit at its highest optimization
level (O3)" and "TKET at its highest optimization level (O2)".  They are
assembled from the same pass implementations that the RL agent can choose
from, with pass selections that follow the published structure of the two
SDKs' preset pipelines.

Since the backend-registry redesign, the public entry point for these flows is
the unified facade: ``repro.compile(circuit, backend="qiskit-o3", device=...)``
(every level is registered as ``qiskit-o0`` ... ``qiskit-o3`` and ``tket-o0``
... ``tket-o2``; see :mod:`repro.api.backends`).  This module now holds only
the *pipeline implementations* — :func:`qiskit_pipeline` / :func:`tket_pipeline`
return the compiled circuit plus the applied pass trace and are consumed by the
``PresetBackend`` wrappers.  The historical ``compile_qiskit_style`` /
``compile_tket_style`` functions and the ``CompiledCircuit`` result type remain
as thin deprecation shims around those pipelines.
"""

from __future__ import annotations

import warnings

from ..circuit.circuit import QuantumCircuit
from ..devices.device import Device
from ..passes.base import PassContext
from ..passes.layout import DenseLayout, SabreLayout, TrivialLayout
from ..passes.optimization import (
    CliffordSimp,
    Collect2qBlocksConsolidate,
    CommutativeCancellation,
    CXCancellation,
    FullPeepholeOptimise,
    InverseCancellation,
    Optimize1qGatesDecomposition,
    RemoveDiagonalGatesBeforeMeasure,
    RemoveRedundancies,
)
from ..passes.routing import BasicSwap, SabreSwap, StochasticSwap, TketRouting
from ..passes.synthesis import BasisTranslator

__all__ = [
    "CompiledCircuit",
    "compile_qiskit_style",
    "compile_tket_style",
    "qiskit_pipeline",
    "tket_pipeline",
]


class CompiledCircuit:
    """Result of a preset compilation: the circuit plus flow bookkeeping.

    .. deprecated::
        Superseded by the unified :class:`repro.CompilationResult`; kept so
        that the ``compile_qiskit_style`` / ``compile_tket_style`` shims stay
        drop-in compatible.
    """

    def __init__(self, circuit: QuantumCircuit, device: Device, passes: list[str]):
        self.circuit = circuit
        self.device = device
        self.passes = passes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompiledCircuit({self.circuit.name!r}, device={self.device.name!r})"


def _finalise(circuit: QuantumCircuit, device: Device, context: PassContext) -> QuantumCircuit:
    """Ensure the output is executable: re-synthesise and clean up if needed."""
    if not device.gates_native(circuit):
        circuit = BasisTranslator().run(circuit, context)
        circuit = Optimize1qGatesDecomposition().run(circuit, context)
    if not device.is_executable(circuit):
        raise RuntimeError(
            f"preset compilation failed to produce an executable circuit for {device.name}"
        )
    return circuit


def qiskit_pipeline(
    circuit: QuantumCircuit,
    device: Device,
    optimization_level: int = 3,
    seed: int = 0,
) -> tuple[QuantumCircuit, list[str]]:
    """Run the Qiskit-style preset pipeline (levels 0-3, default O3).

    Returns the compiled, executable circuit together with the names of the
    applied passes, in order.
    """
    if not 0 <= optimization_level <= 3:
        raise ValueError("Qiskit-style optimization level must be between 0 and 3")
    context = PassContext(device=device, seed=seed)
    applied: list[str] = []

    def run(pass_, circ):
        applied.append(pass_.name)
        return pass_.run(circ, context)

    work = circuit.copy()

    # Stage 1: device-independent optimization.
    if optimization_level >= 1:
        work = run(Optimize1qGatesDecomposition(basis="u3"), work)
        work = run(InverseCancellation(), work)
    if optimization_level >= 2:
        work = run(CommutativeCancellation(), work)
    if optimization_level >= 3:
        work = run(Collect2qBlocksConsolidate(), work)
        work = run(Optimize1qGatesDecomposition(basis="u3"), work)

    # Stage 2: synthesis to the native gate set.
    work = run(BasisTranslator(), work)

    # Stage 3: layout.
    if optimization_level == 0:
        work = run(TrivialLayout(), work)
    elif optimization_level == 1:
        work = run(DenseLayout(), work)
    else:
        work = run(SabreLayout(seed=seed), work)

    # Stage 4: routing.
    if optimization_level == 0:
        work = run(BasicSwap(), work)
    elif optimization_level == 1:
        work = run(StochasticSwap(seed=seed), work)
    else:
        work = run(SabreSwap(seed=seed), work)

    # Stage 5: post-mapping optimization.
    if optimization_level >= 1:
        work = run(Optimize1qGatesDecomposition(), work)
        work = run(CXCancellation(), work)
    if optimization_level >= 2:
        work = run(CommutativeCancellation(), work)
    if optimization_level >= 3:
        work = run(Collect2qBlocksConsolidate(), work)
        work = run(BasisTranslator(), work)
        work = run(Optimize1qGatesDecomposition(), work)
        work = run(RemoveDiagonalGatesBeforeMeasure(), work)

    work = _finalise(work, device, context)
    return work, applied


def tket_pipeline(
    circuit: QuantumCircuit,
    device: Device,
    optimization_level: int = 2,
    seed: int = 0,
) -> tuple[QuantumCircuit, list[str]]:
    """Run the TKET-style preset pipeline (levels 0-2, default O2).

    Returns the compiled, executable circuit together with the names of the
    applied passes, in order.
    """
    if not 0 <= optimization_level <= 2:
        raise ValueError("TKET-style optimization level must be between 0 and 2")
    context = PassContext(device=device, seed=seed)
    applied: list[str] = []

    def run(pass_, circ):
        applied.append(pass_.name)
        return pass_.run(circ, context)

    work = circuit.copy()

    # Stage 1: device-independent optimization ("SynthesiseTket" / "FullPeepholeOptimise").
    if optimization_level == 1:
        work = run(RemoveRedundancies(), work)
        work = run(Optimize1qGatesDecomposition(basis="u3"), work)
        work = run(CliffordSimp(), work)
    elif optimization_level >= 2:
        work = run(FullPeepholeOptimise(), work)

    # Stage 2: rebase (synthesis) to the native gate set.
    work = run(BasisTranslator(), work)

    # Stage 3: placement + routing.
    if optimization_level == 0:
        work = run(TrivialLayout(), work)
    else:
        work = run(DenseLayout(), work)
    work = run(TketRouting(seed=seed), work)

    # Stage 4: post-routing clean-up.
    if optimization_level >= 1:
        work = run(Optimize1qGatesDecomposition(), work)
        work = run(RemoveRedundancies(), work)
    if optimization_level >= 2:
        work = run(CliffordSimp(), work)
        work = run(BasisTranslator(), work)
        work = run(Optimize1qGatesDecomposition(), work)
        work = run(RemoveRedundancies(), work)

    work = _finalise(work, device, context)
    return work, applied


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def compile_qiskit_style(
    circuit: QuantumCircuit,
    device: Device,
    optimization_level: int = 3,
    seed: int = 0,
) -> CompiledCircuit:
    """Deprecated shim: compile with the Qiskit-style preset pipeline.

    Use ``repro.compile(circuit, backend=f"qiskit-o{level}", device=device)``,
    which returns the unified :class:`repro.CompilationResult`.
    """
    _deprecated("compile_qiskit_style", 'repro.compile(..., backend="qiskit-o<level>")')
    compiled, applied = qiskit_pipeline(circuit, device, optimization_level, seed)
    return CompiledCircuit(compiled, device, applied)


def compile_tket_style(
    circuit: QuantumCircuit,
    device: Device,
    optimization_level: int = 2,
    seed: int = 0,
) -> CompiledCircuit:
    """Deprecated shim: compile with the TKET-style preset pipeline.

    Use ``repro.compile(circuit, backend=f"tket-o{level}", device=device)``,
    which returns the unified :class:`repro.CompilationResult`.
    """
    _deprecated("compile_tket_style", 'repro.compile(..., backend="tket-o<level>")')
    compiled, applied = tket_pipeline(circuit, device, optimization_level, seed)
    return CompiledCircuit(compiled, device, applied)
