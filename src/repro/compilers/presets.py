"""Preset compilation pipelines in the style of Qiskit and TKET.

These pipelines are the comparison points of the paper's evaluation: every
benchmark circuit is also compiled with "Qiskit at its highest optimization
level (O3)" and "TKET at its highest optimization level (O2)".  They are
assembled from the same pass implementations that the RL agent can choose
from, with pass selections that follow the published structure of the two
SDKs' preset pipelines.

Since the pipeline-layer refactor the levels are *declarative schedules*:
:data:`QISKIT_LEVELS` and :data:`TKET_LEVELS` map each optimization level to
the :class:`~repro.pipeline.Stage` sequence it runs, and
:func:`preset_pass_manager` turns a (style, level) pair into a ready
:class:`~repro.pipeline.PassManager`.  Both the pipeline functions here and
the registered API backends (:mod:`repro.api.backends`) execute those same
schedules — there is exactly one definition of what "qiskit-o3" means.

The public entry point for end users is the unified facade:
``repro.compile(circuit, backend="qiskit-o3", device=...)`` (every level is
registered as ``qiskit-o0`` ... ``qiskit-o3`` and ``tket-o0`` ... ``tket-o2``).
:func:`qiskit_pipeline` / :func:`tket_pipeline` return the compiled circuit
plus the applied pass trace and are consumed by the ``PresetBackend``
wrappers; the historical ``compile_qiskit_style`` / ``compile_tket_style``
functions and the ``CompiledCircuit`` result type remain as thin deprecation
shims around them.
"""

from __future__ import annotations

import warnings

from ..circuit.circuit import QuantumCircuit
from ..devices.device import Device
from ..passes.base import PassContext
from ..passes.layout import DenseLayout, SabreLayout, TrivialLayout
from ..passes.optimization import (
    CliffordSimp,
    Collect2qBlocksConsolidate,
    CommutativeCancellation,
    CXCancellation,
    FullPeepholeOptimise,
    InverseCancellation,
    Optimize1qGatesDecomposition,
    RemoveDiagonalGatesBeforeMeasure,
    RemoveRedundancies,
)
from ..passes.routing import BasicSwap, SabreSwap, StochasticSwap, TketRouting
from ..passes.synthesis import BasisTranslator
from ..pipeline import AnalysisCache, PassManager, RepeatUntilStable, Stage

__all__ = [
    "CompiledCircuit",
    "QISKIT_LEVELS",
    "TKET_LEVELS",
    "iterate_stage",
    "compile_qiskit_style",
    "compile_tket_style",
    "preset_pass_manager",
    "qiskit_pipeline",
    "run_preset_manager",
    "tket_pipeline",
]


def _needs_rebase(circuit: QuantumCircuit, context: PassContext) -> bool:
    """Finalisation condition: the circuit still contains non-native gates."""
    return not context.require_device().gates_native(circuit)


#: the shared clean-up stage: re-synthesise and tidy up only when a
#: post-mapping optimization re-introduced non-native gates.  Not part of the
#: advertised pass trace (it is a safety net, not a scheduled pass).
def _finalise_stage() -> Stage:
    return Stage(
        "finalise",
        (BasisTranslator(), Optimize1qGatesDecomposition()),
        condition=_needs_rebase,
        record_trace=False,
    )


def _qiskit_stages(level: int) -> tuple[Stage, ...]:
    """The Qiskit-style schedule for one optimization level, as data.

    Stochastic passes are instantiated without a seed: they draw it from the
    ``PassContext`` at run time, which keeps one schedule valid for every
    compilation seed.
    """
    pre: list = []
    if level >= 1:
        pre += [Optimize1qGatesDecomposition(basis="u3"), InverseCancellation()]
    if level >= 2:
        pre += [CommutativeCancellation()]
    if level >= 3:
        pre += [Collect2qBlocksConsolidate(), Optimize1qGatesDecomposition(basis="u3")]

    layout = {0: TrivialLayout(), 1: DenseLayout()}.get(level, SabreLayout())
    routing = {0: BasicSwap(), 1: StochasticSwap()}.get(level, SabreSwap())

    post: list = []
    if level >= 1:
        post += [Optimize1qGatesDecomposition(), CXCancellation()]
    if level >= 2:
        post += [CommutativeCancellation()]
    if level >= 3:
        post += [
            Collect2qBlocksConsolidate(),
            BasisTranslator(),
            Optimize1qGatesDecomposition(),
            RemoveDiagonalGatesBeforeMeasure(),
        ]

    return (
        Stage("pre_optimization", tuple(pre)),
        Stage("synthesis", (BasisTranslator(),)),
        Stage("layout", (layout,)),
        Stage("routing", (routing,)),
        Stage("post_optimization", tuple(post)),
        _finalise_stage(),
    )


def _tket_stages(level: int) -> tuple[Stage, ...]:
    """The TKET-style schedule for one optimization level, as data."""
    pre: list = []
    if level == 1:
        pre = [RemoveRedundancies(), Optimize1qGatesDecomposition(basis="u3"), CliffordSimp()]
    elif level >= 2:
        pre = [FullPeepholeOptimise()]

    placement = TrivialLayout() if level == 0 else DenseLayout()

    post: list = []
    if level >= 1:
        post += [Optimize1qGatesDecomposition(), RemoveRedundancies()]
    if level >= 2:
        post += [
            CliffordSimp(),
            BasisTranslator(),
            Optimize1qGatesDecomposition(),
            RemoveRedundancies(),
        ]

    return (
        Stage("pre_optimization", tuple(pre)),
        Stage("rebase", (BasisTranslator(),)),
        Stage("placement", (placement, TketRouting())),
        Stage("post_routing", tuple(post)),
        _finalise_stage(),
    )


#: level → declarative stage schedule for each preset style
QISKIT_LEVELS: dict[int, tuple[Stage, ...]] = {level: _qiskit_stages(level) for level in range(4)}
TKET_LEVELS: dict[int, tuple[Stage, ...]] = {level: _tket_stages(level) for level in range(3)}

_LEVEL_TABLES = {"qiskit": QISKIT_LEVELS, "tket": TKET_LEVELS}

#: the post-mapping optimization stage of each style — the stage the
#: experimental ``-iter`` backends run to a fixed point
_POST_STAGE = {"qiskit": "post_optimization", "tket": "post_routing"}


def iterate_stage(
    stages: "tuple[Stage, ...]",
    stage_name: str,
    *,
    max_iterations: int = 8,
) -> tuple[Stage, ...]:
    """Wrap one stage's passes in a :class:`RepeatUntilStable` controller.

    Returns a new schedule in which ``stage_name`` runs to quiescence (its
    pass group repeats until the circuit fingerprint stops changing) while
    every other stage is shared, untouched, with the input schedule.  This is
    how the experimental fixed-point preset levels are derived from the
    golden-pinned base levels without altering them.
    """
    out = []
    for stage in stages:
        if stage.name == stage_name and stage.passes:
            controller = RepeatUntilStable(
                stage.passes,
                max_iterations=max_iterations,
                name=f"{stage.name}_fixed_point",
            )
            stage = Stage(
                stage.name,
                (controller,),
                condition=stage.condition,
                record_trace=stage.record_trace,
            )
        out.append(stage)
    return tuple(out)


def preset_pass_manager(
    style: str,
    optimization_level: int,
    *,
    iterate: bool = False,
    cache: AnalysisCache | None = None,
) -> PassManager:
    """Build the :class:`PassManager` for one preset style and level.

    This is the single source of truth for the preset flows: the pipeline
    functions below and the registered ``qiskit-o*`` / ``tket-o*`` backends
    all run the manager returned here.  With ``iterate=True`` the
    post-mapping optimization stage is wrapped in a fixed-point controller
    (the experimental ``qiskit-o3-iter`` / ``tket-o2-iter`` backends).
    """
    try:
        levels = _LEVEL_TABLES[style]
    except KeyError:
        raise ValueError(
            f"unknown preset style {style!r}; expected one of {sorted(_LEVEL_TABLES)}"
        ) from None
    if optimization_level not in levels:
        label = "Qiskit" if style == "qiskit" else "TKET"
        raise ValueError(
            f"{label}-style optimization level must be between 0 and {max(levels)}"
        )
    stages = levels[optimization_level]
    name = f"{style}-o{optimization_level}"
    if iterate:
        stages = iterate_stage(stages, _POST_STAGE[style])
        name += "-iter"
    return PassManager(stages, name=name, cache=cache)


def run_preset_manager(
    manager: PassManager,
    circuit: QuantumCircuit,
    device: Device,
    seed: int = 0,
) -> tuple[QuantumCircuit, list[str]]:
    """Run a preset schedule and enforce the executable-output contract.

    Shared by the pipeline functions here and the registered preset backends
    so the finalisation invariant (the output must be executable on the
    target device) lives in exactly one place.
    """
    context = PassContext(device=device, seed=seed)
    trace: list[str] = []
    compiled = manager.run(circuit.copy(), context, trace=trace)
    cache = manager.cache
    executable = (
        cache.is_executable(compiled, device) if cache is not None else device.is_executable(compiled)
    )
    if not executable:
        raise RuntimeError(
            f"preset compilation failed to produce an executable circuit for {device.name}"
        )
    return compiled, trace


def _run_preset(
    style: str,
    circuit: QuantumCircuit,
    device: Device,
    optimization_level: int,
    seed: int,
    cache: AnalysisCache | None = None,
) -> tuple[QuantumCircuit, list[str]]:
    manager = preset_pass_manager(style, optimization_level, cache=cache)
    return run_preset_manager(manager, circuit, device, seed)


def qiskit_pipeline(
    circuit: QuantumCircuit,
    device: Device,
    optimization_level: int = 3,
    seed: int = 0,
    *,
    cache: AnalysisCache | None = None,
) -> tuple[QuantumCircuit, list[str]]:
    """Run the Qiskit-style preset pipeline (levels 0-3, default O3).

    Returns the compiled, executable circuit together with the names of the
    applied passes, in order.
    """
    if not 0 <= optimization_level <= 3:
        raise ValueError("Qiskit-style optimization level must be between 0 and 3")
    return _run_preset("qiskit", circuit, device, optimization_level, seed, cache)


def tket_pipeline(
    circuit: QuantumCircuit,
    device: Device,
    optimization_level: int = 2,
    seed: int = 0,
    *,
    cache: AnalysisCache | None = None,
) -> tuple[QuantumCircuit, list[str]]:
    """Run the TKET-style preset pipeline (levels 0-2, default O2).

    Returns the compiled, executable circuit together with the names of the
    applied passes, in order.
    """
    if not 0 <= optimization_level <= 2:
        raise ValueError("TKET-style optimization level must be between 0 and 2")
    return _run_preset("tket", circuit, device, optimization_level, seed, cache)


class CompiledCircuit:
    """Result of a preset compilation: the circuit plus flow bookkeeping.

    .. deprecated::
        Superseded by the unified :class:`repro.CompilationResult`; kept so
        that the ``compile_qiskit_style`` / ``compile_tket_style`` shims stay
        drop-in compatible.
    """

    def __init__(self, circuit: QuantumCircuit, device: Device, passes: list[str]):
        self.circuit = circuit
        self.device = device
        self.passes = passes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompiledCircuit({self.circuit.name!r}, device={self.device.name!r})"


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def compile_qiskit_style(
    circuit: QuantumCircuit,
    device: Device,
    optimization_level: int = 3,
    seed: int = 0,
) -> CompiledCircuit:
    """Deprecated shim: compile with the Qiskit-style preset pipeline.

    Use ``repro.compile(circuit, backend=f"qiskit-o{level}", device=device)``,
    which returns the unified :class:`repro.CompilationResult`.
    """
    _deprecated("compile_qiskit_style", 'repro.compile(..., backend="qiskit-o<level>")')
    compiled, applied = qiskit_pipeline(circuit, device, optimization_level, seed)
    return CompiledCircuit(compiled, device, applied)


def compile_tket_style(
    circuit: QuantumCircuit,
    device: Device,
    optimization_level: int = 2,
    seed: int = 0,
) -> CompiledCircuit:
    """Deprecated shim: compile with the TKET-style preset pipeline.

    Use ``repro.compile(circuit, backend=f"tket-o{level}", device=device)``,
    which returns the unified :class:`repro.CompilationResult`.
    """
    _deprecated("compile_tket_style", 'repro.compile(..., backend="tket-o<level>")')
    compiled, applied = tket_pipeline(circuit, device, optimization_level, seed)
    return CompiledCircuit(compiled, device, applied)
