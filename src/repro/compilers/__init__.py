"""Preset compilation pipelines (Qiskit-style and TKET-style flows).

The public entry point for these flows is the backend registry: every level is
registered as ``qiskit-o0`` ... ``qiskit-o3`` / ``tket-o0`` ... ``tket-o2``
and reachable through ``repro.compile(circuit, backend=...)``.  The level
tables themselves are pure-data :class:`~repro.compilers.presets.StageSpec`
schedules resolved through the pass registry, so any stage slot can be
swapped by name via ``preset_pass_manager(..., overrides=...)`` or the
facade's ``pass_overrides=``.
"""

from .presets import (
    QISKIT_LEVELS,
    TKET_LEVELS,
    StageSpec,
    apply_stage_overrides,
    compile_qiskit_style,
    compile_tket_style,
    iterate_stage,
    preset_pass_manager,
    qiskit_pipeline,
    run_preset_manager,
    tket_pipeline,
)

__all__ = [
    "QISKIT_LEVELS",
    "TKET_LEVELS",
    "StageSpec",
    "apply_stage_overrides",
    "compile_qiskit_style",
    "compile_tket_style",
    "iterate_stage",
    "preset_pass_manager",
    "qiskit_pipeline",
    "run_preset_manager",
    "tket_pipeline",
]
