"""Baseline preset compilers (Qiskit-style and TKET-style flows)."""

from .presets import CompiledCircuit, compile_qiskit_style, compile_tket_style

__all__ = ["CompiledCircuit", "compile_qiskit_style", "compile_tket_style"]
