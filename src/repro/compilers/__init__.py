"""Preset compilation pipelines (Qiskit-style and TKET-style flows).

The public entry point for these flows is the backend registry: every level is
registered as ``qiskit-o0`` ... ``qiskit-o3`` / ``tket-o0`` ... ``tket-o2``
and reachable through ``repro.compile(circuit, backend=...)``.  The
``compile_qiskit_style`` / ``compile_tket_style`` functions re-exported here
are deprecation shims kept for backwards compatibility.
"""

from .presets import (
    QISKIT_LEVELS,
    TKET_LEVELS,
    CompiledCircuit,
    compile_qiskit_style,
    compile_tket_style,
    preset_pass_manager,
    qiskit_pipeline,
    run_preset_manager,
    tket_pipeline,
)

__all__ = [
    "QISKIT_LEVELS",
    "TKET_LEVELS",
    "CompiledCircuit",
    "compile_qiskit_style",
    "compile_tket_style",
    "preset_pass_manager",
    "qiskit_pipeline",
    "run_preset_manager",
    "tket_pipeline",
]
