"""Reward functions for the compilation MDP.

Three reward functions mirror the paper's Section III-B / IV-A:

* **expected fidelity** — the product of per-gate and per-readout success
  probabilities given the device calibration; 1 means error-free execution.
* **critical depth** — ``1 - critical_depth`` where ``critical_depth`` is
  the SupermarQ feature (fraction of two-qubit gates on the longest path);
  higher is better (less sequential).
* **combination** — the mean of the two.

Rewards are only meaningful for *executable* circuits (native gates, valid
mapping); the environment therefore emits a sparse reward: 0 until the
"Done" state is reached, then the chosen metric of the final circuit.
"""

from __future__ import annotations

from ..circuit.circuit import QuantumCircuit
from ..devices.device import Device
from ..features.supermarq import critical_depth

__all__ = [
    "expected_fidelity",
    "critical_depth_reward",
    "combined_reward",
    "reward_function",
    "REWARD_FUNCTIONS",
]


def expected_fidelity(circuit: QuantumCircuit, device: Device) -> float:
    """Estimate the probability that the circuit executes without error.

    Multiplies ``1 - error`` over every unitary gate (using the device's
    calibrated single-/two-qubit error rates) and ``1 - readout_error`` over
    every measured qubit.  Circuits without explicit measurements are treated
    as measuring every active qubit, which matches how the paper's benchmark
    circuits are evaluated.
    """
    calibration = device.calibration
    fidelity = 1.0
    measured: set[int] = set()
    has_measure = False
    for instr in circuit:
        if instr.name == "barrier":
            continue
        if instr.name == "measure":
            has_measure = True
            measured.add(instr.qubits[0])
            continue
        if instr.name == "reset" or not instr.gate.is_unitary:
            continue
        if instr.name == "id":
            continue
        fidelity *= 1.0 - calibration.gate_error(instr.qubits)
    if not has_measure:
        measured = set(circuit.active_qubits())
    for qubit in measured:
        fidelity *= 1.0 - calibration.measurement_error(qubit)
    return max(0.0, min(1.0, fidelity))


def critical_depth_reward(circuit: QuantumCircuit, device: Device | None = None) -> float:
    """``1 - critical_depth``: rewards circuits whose 2q gates are parallelised."""
    return max(0.0, min(1.0, 1.0 - critical_depth(circuit)))


def combined_reward(circuit: QuantumCircuit, device: Device) -> float:
    """Average of expected fidelity and the critical-depth reward."""
    return 0.5 * (expected_fidelity(circuit, device) + critical_depth_reward(circuit, device))


REWARD_FUNCTIONS = {
    "fidelity": expected_fidelity,
    "critical_depth": critical_depth_reward,
    "combination": combined_reward,
}


def reward_function(name: str):
    """Look up a reward function by name (``fidelity`` / ``critical_depth`` / ``combination``)."""
    if name not in REWARD_FUNCTIONS:
        raise KeyError(
            f"unknown reward {name!r}; available: {', '.join(sorted(REWARD_FUNCTIONS))}"
        )
    return REWARD_FUNCTIONS[name]
