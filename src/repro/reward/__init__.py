"""Optimization objectives (reward functions) for the compilation MDP."""

from .functions import (
    REWARD_FUNCTIONS,
    combined_reward,
    critical_depth_reward,
    expected_fidelity,
    reward_function,
)

__all__ = [
    "REWARD_FUNCTIONS",
    "expected_fidelity",
    "critical_depth_reward",
    "combined_reward",
    "reward_function",
]
