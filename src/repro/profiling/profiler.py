"""The :class:`ProfileRegistry` and its module-global instance."""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

__all__ = [
    "Timer",
    "ProfileRegistry",
    "profiler",
    "enable_profiling",
    "disable_profiling",
    "profiling_enabled",
    "profiled",
    "record",
]


class Timer:
    """A context-manager stopwatch; ``elapsed`` holds seconds after exit.

    Usable standalone (benchmarks time their sections with it) or through
    :func:`profiled`, which feeds the reading into the global registry::

        with Timer() as timer:
            work()
        print(timer.elapsed)
    """

    __slots__ = ("start", "elapsed")

    def __init__(self) -> None:
        self.start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self.start


class ProfileRegistry:
    """Thread-safe map of name -> (calls, seconds, items) counters.

    ``items`` lets throughput-style counters (gates resynthesised, circuits
    featurised, SWAPs scored) ride along with the wall time, so a snapshot
    can report both "how often / how long" and "how much work per second".
    """

    def __init__(self) -> None:
        self.enabled = False
        self._lock = threading.Lock()
        #: name -> [calls, total_seconds, items]
        self._counters: dict[str, list] = {}

    # -- recording ---------------------------------------------------------------

    def record(self, name: str, seconds: float, items: int = 0) -> None:
        if not self.enabled:
            return
        with self._lock:
            entry = self._counters.get(name)
            if entry is None:
                self._counters[name] = [1, seconds, items]
            else:
                entry[0] += 1
                entry[1] += seconds
                entry[2] += items

    @contextmanager
    def timed(self, name: str, items: int = 0):
        """Time a block under ``name`` (no-op branch when disabled)."""
        if not self.enabled:
            yield None
            return
        start = time.perf_counter()
        try:
            yield None
        finally:
            self.record(name, time.perf_counter() - start, items)

    # -- reading -----------------------------------------------------------------

    def snapshot(self) -> dict[str, dict[str, float]]:
        """``{name: {calls, total_seconds, mean_seconds, items, items_per_second}}``."""
        with self._lock:
            counters = {name: list(entry) for name, entry in self._counters.items()}
        out: dict[str, dict[str, float]] = {}
        for name, (calls, seconds, items) in sorted(counters.items()):
            out[name] = {
                "calls": calls,
                "total_seconds": seconds,
                "mean_seconds": seconds / calls if calls else 0.0,
                "items": items,
                "items_per_second": items / seconds if seconds > 0 and items else 0.0,
            }
        return out

    def merge(self, counters: dict) -> None:
        """Fold another registry's counters into this one.

        ``counters`` is :meth:`snapshot`-shaped (``{name: {calls,
        total_seconds, items, ...}}``).  This is how process-lane workers'
        profiling comes home: each worker snapshots its own (per-process)
        global registry after a task and ships the delta back through the
        pickled result, and the parent service merges it here — without this,
        ``--profile`` silently under-reports every backend routed to a
        process lane.  Merging is unconditional on ``enabled`` so counters
        collected remotely are never dropped by a locally-disabled registry.
        """
        if not counters:
            return
        with self._lock:
            for name, stats in counters.items():
                calls = int(stats.get("calls", 0))
                seconds = float(stats.get("total_seconds", 0.0))
                items = int(stats.get("items", 0))
                if not calls and not seconds and not items:
                    continue
                entry = self._counters.get(name)
                if entry is None:
                    self._counters[name] = [calls, seconds, items]
                else:
                    entry[0] += calls
                    entry[1] += seconds
                    entry[2] += items

    def report(self) -> str:
        """Fixed-width text table of the snapshot (debug/CLI output)."""
        rows = [f"{'name':<44} {'calls':>8} {'total_s':>10} {'mean_ms':>10} {'items':>10}"]
        for name, stats in self.snapshot().items():
            rows.append(
                f"{name:<44} {stats['calls']:>8d} {stats['total_seconds']:>10.4f} "
                f"{1000 * stats['mean_seconds']:>10.4f} {stats['items']:>10d}"
            )
        return "\n".join(rows)

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()


#: the process-global registry every instrumented hot path records into
_REGISTRY = ProfileRegistry()


def profiler() -> ProfileRegistry:
    """The process-global :class:`ProfileRegistry`."""
    return _REGISTRY


def enable_profiling(clear: bool = False) -> ProfileRegistry:
    """Switch the global registry on (optionally wiping prior counters)."""
    if clear:
        _REGISTRY.clear()
    _REGISTRY.enabled = True
    return _REGISTRY


def disable_profiling() -> None:
    _REGISTRY.enabled = False


def profiling_enabled() -> bool:
    return _REGISTRY.enabled


def profiled(name: str, items: int = 0):
    """``with profiled("pass.optimize_1q_gates"): ...`` against the global registry."""
    return _REGISTRY.timed(name, items)


def record(name: str, seconds: float, items: int = 0) -> None:
    """Record a pre-measured duration into the global registry."""
    _REGISTRY.record(name, seconds, items)
