"""Hot-path profiling: named wall-time counters with near-zero overhead when off.

The perf story of this repo is only as good as its measurements: the numeric
kernels in :mod:`repro.linalg.kernels` and the vectorised feature extraction
claim multiples, and this module is what turns those claims into numbers a
running service can expose.  A :class:`ProfileRegistry` holds per-name
counters (calls, accumulated seconds, processed items); the pass runner, the
kernels and the routers record into the process-global registry through
:func:`profiled` / :func:`record`, which cost one dict lookup and a branch
when profiling is disabled.

Usage::

    from repro.profiling import enable_profiling, profiled, profiler

    enable_profiling()
    with profiled("kernel.synthesize_1q_batch", items=len(runs)):
        ...
    profiler().snapshot()   # {"kernel.synthesize_1q_batch": {...}, ...}

``python -m repro.service --profile`` enables the registry at server start;
``CompileService.stats()`` and the gateway's ``/v1/stats`` + ``/metrics``
then carry the per-pass and per-kernel timings.
"""

from .profiler import (
    ProfileRegistry,
    Timer,
    disable_profiling,
    enable_profiling,
    profiled,
    profiler,
    profiling_enabled,
    record,
)

__all__ = [
    "ProfileRegistry",
    "Timer",
    "disable_profiling",
    "enable_profiling",
    "profiled",
    "profiler",
    "profiling_enabled",
    "record",
]
