"""Textbook-algorithm benchmark circuits (MQT-Bench style).

These generators produce the target-independent versions of the algorithmic
benchmarks used in the paper's evaluation: GHZ / W state preparation,
Deutsch-Jozsa, graph states, the quantum Fourier transform (plain and on an
entangled register), quantum phase estimation (exact and inexact), and
amplitude estimation.
"""

from __future__ import annotations

import math

import numpy as np

from ..circuit.circuit import QuantumCircuit

__all__ = [
    "ghz",
    "wstate",
    "dj",
    "graphstate",
    "qft",
    "qft_entangled",
    "qpe_exact",
    "qpe_inexact",
    "amplitude_estimation",
]


def ghz(num_qubits: int) -> QuantumCircuit:
    """GHZ state preparation: H followed by a CX chain."""
    if num_qubits < 2:
        raise ValueError("GHZ needs at least 2 qubits")
    circuit = QuantumCircuit(num_qubits, name=f"ghz_{num_qubits}")
    circuit.h(0)
    for qubit in range(num_qubits - 1):
        circuit.cx(qubit, qubit + 1)
    circuit.measure_all()
    return circuit


def wstate(num_qubits: int) -> QuantumCircuit:
    """W-state preparation via the standard cascade of controlled rotations."""
    if num_qubits < 2:
        raise ValueError("W state needs at least 2 qubits")
    circuit = QuantumCircuit(num_qubits, name=f"wstate_{num_qubits}")
    circuit.x(num_qubits - 1)
    for i in range(num_qubits - 1, 0, -1):
        angle = 2.0 * math.acos(math.sqrt(1.0 / (i + 1)))
        # Controlled-RY followed by CX distributes one excitation across qubits.
        circuit.cry(angle, i, i - 1)
        circuit.cx(i - 1, i)
    circuit.measure_all()
    return circuit


def dj(num_qubits: int, *, balanced: bool = True) -> QuantumCircuit:
    """Deutsch-Jozsa with a balanced (or constant) oracle on ``num_qubits - 1`` inputs."""
    if num_qubits < 2:
        raise ValueError("Deutsch-Jozsa needs at least 2 qubits")
    circuit = QuantumCircuit(num_qubits, name=f"dj_{num_qubits}")
    ancilla = num_qubits - 1
    circuit.x(ancilla)
    for qubit in range(num_qubits):
        circuit.h(qubit)
    if balanced:
        for qubit in range(ancilla):
            circuit.cx(qubit, ancilla)
    for qubit in range(ancilla):
        circuit.h(qubit)
    for qubit in range(ancilla):
        circuit.measure(qubit, qubit)
    return circuit


def graphstate(num_qubits: int, *, degree: int = 3, seed: int | None = None) -> QuantumCircuit:
    """Graph state on a random (near-)regular graph of the given degree."""
    if num_qubits < 2:
        raise ValueError("graph state needs at least 2 qubits")
    rng = np.random.default_rng(seed if seed is not None else num_qubits)
    circuit = QuantumCircuit(num_qubits, name=f"graphstate_{num_qubits}")
    for qubit in range(num_qubits):
        circuit.h(qubit)
    edges: set[tuple[int, int]] = set()
    # ring backbone guarantees connectivity
    for qubit in range(num_qubits):
        edges.add(tuple(sorted((qubit, (qubit + 1) % num_qubits))))
    target_edges = max(num_qubits, (degree * num_qubits) // 2)
    attempts = 0
    while len(edges) < target_edges and attempts < 20 * num_qubits:
        attempts += 1
        a, b = rng.choice(num_qubits, size=2, replace=False)
        edges.add(tuple(sorted((int(a), int(b)))))
    for a, b in sorted(edges):
        circuit.cz(a, b)
    circuit.measure_all()
    return circuit


def qft(num_qubits: int, *, with_measurements: bool = True, inverse: bool = False) -> QuantumCircuit:
    """Quantum Fourier transform (with final qubit-reversal SWAPs)."""
    if num_qubits < 1:
        raise ValueError("QFT needs at least 1 qubit")
    circuit = QuantumCircuit(num_qubits, name=f"qft_{num_qubits}")
    _append_qft(circuit, list(range(num_qubits)), inverse=inverse)
    if with_measurements:
        circuit.measure_all()
    return circuit


def _append_qft(circuit: QuantumCircuit, qubits: list[int], *, inverse: bool = False) -> None:
    n = len(qubits)
    ops: list[tuple[str, tuple]] = []
    for i in range(n):
        ops.append(("h", (qubits[i],)))
        for j in range(i + 1, n):
            angle = math.pi / (2 ** (j - i))
            ops.append(("cp", (angle, qubits[j], qubits[i])))
    for i in range(n // 2):
        ops.append(("swap", (qubits[i], qubits[n - 1 - i])))
    if inverse:
        for name, args in reversed(ops):
            if name == "h":
                circuit.h(*args)
            elif name == "swap":
                circuit.swap(*args)
            else:
                angle, control, target = args
                circuit.cp(-angle, control, target)
    else:
        for name, args in ops:
            if name == "h":
                circuit.h(*args)
            elif name == "swap":
                circuit.swap(*args)
            else:
                angle, control, target = args
                circuit.cp(angle, control, target)


def qft_entangled(num_qubits: int) -> QuantumCircuit:
    """QFT applied to a GHZ-entangled register."""
    if num_qubits < 2:
        raise ValueError("entangled QFT needs at least 2 qubits")
    circuit = QuantumCircuit(num_qubits, name=f"qftentangled_{num_qubits}")
    circuit.h(0)
    for qubit in range(num_qubits - 1):
        circuit.cx(qubit, qubit + 1)
    _append_qft(circuit, list(range(num_qubits)))
    circuit.measure_all()
    return circuit


def _qpe(num_qubits: int, phase: float, name: str) -> QuantumCircuit:
    """Quantum phase estimation of a phase gate with the given phase."""
    if num_qubits < 2:
        raise ValueError("QPE needs at least 2 qubits")
    counting = num_qubits - 1
    circuit = QuantumCircuit(num_qubits, name=name)
    target = num_qubits - 1
    circuit.x(target)
    for qubit in range(counting):
        circuit.h(qubit)
    for qubit in range(counting):
        angle = 2.0 * math.pi * phase * (2**qubit)
        circuit.cp(angle, qubit, target)
    _append_qft(circuit, list(range(counting)), inverse=True)
    for qubit in range(counting):
        circuit.measure(qubit, qubit)
    return circuit


def qpe_exact(num_qubits: int) -> QuantumCircuit:
    """QPE where the phase is exactly representable with the counting register."""
    counting = num_qubits - 1
    phase = 1.0 / (2**counting) * max(1, 2 ** (counting - 1) - 1)
    return _qpe(num_qubits, phase, f"qpeexact_{num_qubits}")


def qpe_inexact(num_qubits: int) -> QuantumCircuit:
    """QPE where the phase is *not* exactly representable (1/3)."""
    return _qpe(num_qubits, 1.0 / 3.0, f"qpeinexact_{num_qubits}")


def amplitude_estimation(num_qubits: int, *, probability: float = 0.2) -> QuantumCircuit:
    """Canonical amplitude estimation of a Bernoulli A operator.

    One objective qubit carries the Bernoulli amplitude; the remaining
    evaluation qubits apply controlled powers of the Grover operator
    (rotations by multiples of the Bernoulli angle) followed by an inverse
    QFT — the same structure as MQT Bench's ``ae`` benchmark.
    """
    if num_qubits < 2:
        raise ValueError("amplitude estimation needs at least 2 qubits")
    evaluation = num_qubits - 1
    objective = num_qubits - 1
    theta = 2.0 * math.asin(math.sqrt(probability))
    circuit = QuantumCircuit(num_qubits, name=f"ae_{num_qubits}")
    circuit.ry(theta, objective)
    for qubit in range(evaluation):
        circuit.h(qubit)
    for qubit in range(evaluation):
        power = 2**qubit
        circuit.cry(2.0 * theta * power, qubit, objective)
    _append_qft(circuit, list(range(evaluation)), inverse=True)
    for qubit in range(evaluation):
        circuit.measure(qubit, qubit)
    return circuit
