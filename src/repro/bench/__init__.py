"""Benchmark circuit generators (MQT-Bench style, 22 families)."""

from .algorithms import (
    amplitude_estimation,
    dj,
    ghz,
    graphstate,
    qft,
    qft_entangled,
    qpe_exact,
    qpe_inexact,
    wstate,
)
from .ansatz import (
    efficient_su2_random,
    groundstate,
    portfolio_vqe,
    qgan,
    real_amplitudes_random,
    two_local_random,
    vqe,
)
from .applications import portfolio_qaoa, pricing_call, pricing_put, qaoa, routing, tsp
from .suite import (
    BENCHMARK_GENERATORS,
    available_benchmarks,
    benchmark_circuit,
    benchmark_suite,
    paper_benchmark_names,
)

__all__ = [
    "BENCHMARK_GENERATORS",
    "available_benchmarks",
    "benchmark_circuit",
    "benchmark_suite",
    "paper_benchmark_names",
    "ghz",
    "wstate",
    "dj",
    "graphstate",
    "qft",
    "qft_entangled",
    "qpe_exact",
    "qpe_inexact",
    "amplitude_estimation",
    "real_amplitudes_random",
    "efficient_su2_random",
    "two_local_random",
    "qgan",
    "vqe",
    "portfolio_vqe",
    "groundstate",
    "qaoa",
    "portfolio_qaoa",
    "tsp",
    "routing",
    "pricing_call",
    "pricing_put",
]
