"""Variational-ansatz benchmark circuits (MQT-Bench style).

Parameterised ansatz circuits with randomly bound parameters: RealAmplitudes,
EfficientSU2, TwoLocal, the qGAN generator ansatz, a VQE ansatz, the
portfolio-VQE ansatz and a ground-state (chemistry-style) ansatz.  The random
parameter values are seeded by the qubit count so the suite is deterministic.
"""

from __future__ import annotations

import numpy as np

from ..circuit.circuit import QuantumCircuit

__all__ = [
    "real_amplitudes_random",
    "efficient_su2_random",
    "two_local_random",
    "qgan",
    "vqe",
    "portfolio_vqe",
    "groundstate",
]


def _parameters(rng: np.random.Generator, count: int) -> np.ndarray:
    return rng.uniform(-np.pi, np.pi, count)


def _entangle(circuit: QuantumCircuit, pattern: str, gate: str = "cx") -> None:
    n = circuit.num_qubits
    pairs: list[tuple[int, int]]
    if pattern == "linear":
        pairs = [(i, i + 1) for i in range(n - 1)]
    elif pattern == "circular":
        pairs = [(i, i + 1) for i in range(n - 1)] + ([(n - 1, 0)] if n > 2 else [])
    elif pattern == "full":
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    else:
        raise ValueError(f"unknown entanglement pattern {pattern!r}")
    for a, b in pairs:
        circuit.append(gate, [a, b])


def real_amplitudes_random(num_qubits: int, *, reps: int = 2, seed: int | None = None) -> QuantumCircuit:
    """RealAmplitudes ansatz (RY rotations + full CX entanglement) with random parameters."""
    if num_qubits < 2:
        raise ValueError("RealAmplitudes needs at least 2 qubits")
    rng = np.random.default_rng(seed if seed is not None else num_qubits)
    circuit = QuantumCircuit(num_qubits, name=f"realamprandom_{num_qubits}")
    params = iter(_parameters(rng, num_qubits * (reps + 1)))
    for rep in range(reps):
        for qubit in range(num_qubits):
            circuit.ry(float(next(params)), qubit)
        _entangle(circuit, "full", "cx")
    for qubit in range(num_qubits):
        circuit.ry(float(next(params)), qubit)
    circuit.measure_all()
    return circuit


def efficient_su2_random(num_qubits: int, *, reps: int = 2, seed: int | None = None) -> QuantumCircuit:
    """EfficientSU2 ansatz (RY+RZ rotations, full CX entanglement) with random parameters."""
    if num_qubits < 2:
        raise ValueError("EfficientSU2 needs at least 2 qubits")
    rng = np.random.default_rng(seed if seed is not None else num_qubits + 1)
    circuit = QuantumCircuit(num_qubits, name=f"su2random_{num_qubits}")
    params = iter(_parameters(rng, 2 * num_qubits * (reps + 1)))
    for rep in range(reps):
        for qubit in range(num_qubits):
            circuit.ry(float(next(params)), qubit)
            circuit.rz(float(next(params)), qubit)
        _entangle(circuit, "full", "cx")
    for qubit in range(num_qubits):
        circuit.ry(float(next(params)), qubit)
        circuit.rz(float(next(params)), qubit)
    circuit.measure_all()
    return circuit


def two_local_random(num_qubits: int, *, reps: int = 3, seed: int | None = None) -> QuantumCircuit:
    """TwoLocal ansatz (RY rotations, circular CX entanglement) with random parameters."""
    if num_qubits < 2:
        raise ValueError("TwoLocal needs at least 2 qubits")
    rng = np.random.default_rng(seed if seed is not None else num_qubits + 2)
    circuit = QuantumCircuit(num_qubits, name=f"twolocalrandom_{num_qubits}")
    params = iter(_parameters(rng, num_qubits * (reps + 1)))
    for rep in range(reps):
        for qubit in range(num_qubits):
            circuit.ry(float(next(params)), qubit)
        _entangle(circuit, "circular", "cx")
    for qubit in range(num_qubits):
        circuit.ry(float(next(params)), qubit)
    circuit.measure_all()
    return circuit


def qgan(num_qubits: int, *, seed: int | None = None) -> QuantumCircuit:
    """qGAN generator ansatz: RY layer, CZ entanglement, RY layer."""
    if num_qubits < 2:
        raise ValueError("qGAN needs at least 2 qubits")
    rng = np.random.default_rng(seed if seed is not None else num_qubits + 3)
    circuit = QuantumCircuit(num_qubits, name=f"qgan_{num_qubits}")
    params = iter(_parameters(rng, 2 * num_qubits))
    for qubit in range(num_qubits):
        circuit.ry(float(next(params)), qubit)
    _entangle(circuit, "linear", "cz")
    for qubit in range(num_qubits):
        circuit.ry(float(next(params)), qubit)
    circuit.measure_all()
    return circuit


def vqe(num_qubits: int, *, reps: int = 2, seed: int | None = None) -> QuantumCircuit:
    """VQE ansatz: RY rotations with linear CX entanglement (TwoLocal 'ry'/'cx')."""
    if num_qubits < 2:
        raise ValueError("VQE needs at least 2 qubits")
    rng = np.random.default_rng(seed if seed is not None else num_qubits + 4)
    circuit = QuantumCircuit(num_qubits, name=f"vqe_{num_qubits}")
    params = iter(_parameters(rng, num_qubits * (reps + 1)))
    for rep in range(reps):
        for qubit in range(num_qubits):
            circuit.ry(float(next(params)), qubit)
        _entangle(circuit, "linear", "cx")
    for qubit in range(num_qubits):
        circuit.ry(float(next(params)), qubit)
    circuit.measure_all()
    return circuit


def portfolio_vqe(num_qubits: int, *, reps: int = 2, seed: int | None = None) -> QuantumCircuit:
    """Portfolio-optimization VQE ansatz: RY+RZ layers with full CZ entanglement."""
    if num_qubits < 2:
        raise ValueError("portfolio VQE needs at least 2 qubits")
    rng = np.random.default_rng(seed if seed is not None else num_qubits + 5)
    circuit = QuantumCircuit(num_qubits, name=f"portfoliovqe_{num_qubits}")
    params = iter(_parameters(rng, 2 * num_qubits * (reps + 1)))
    for rep in range(reps):
        for qubit in range(num_qubits):
            circuit.ry(float(next(params)), qubit)
            circuit.rz(float(next(params)), qubit)
        _entangle(circuit, "full", "cz")
    for qubit in range(num_qubits):
        circuit.ry(float(next(params)), qubit)
        circuit.rz(float(next(params)), qubit)
    circuit.measure_all()
    return circuit


def groundstate(num_qubits: int, *, seed: int | None = None) -> QuantumCircuit:
    """Molecular ground-state ansatz (chemistry-inspired, hardware-efficient).

    MQT Bench derives this benchmark from small molecules (H2, LiH); here the
    same hardware-efficient structure is used: an initial Hartree-Fock-like X
    layer on half the qubits, followed by parameterised RY/RZ layers with
    linear CX entanglement.
    """
    if num_qubits < 2:
        raise ValueError("ground-state ansatz needs at least 2 qubits")
    rng = np.random.default_rng(seed if seed is not None else num_qubits + 6)
    circuit = QuantumCircuit(num_qubits, name=f"groundstate_{num_qubits}")
    for qubit in range(0, num_qubits, 2):
        circuit.x(qubit)
    params = iter(_parameters(rng, 4 * num_qubits))
    for _ in range(2):
        for qubit in range(num_qubits):
            circuit.ry(float(next(params)), qubit)
            circuit.rz(float(next(params)), qubit)
        _entangle(circuit, "linear", "cx")
    circuit.measure_all()
    return circuit
