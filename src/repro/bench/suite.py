"""Benchmark registry and suite assembly (MQT-Bench style).

The paper evaluates on 200 circuits from 22 benchmark families with 2-20
qubits, taken from MQT Bench at the target-independent level.  This module
exposes the same families by name and assembles qubit-range suites.
"""

from __future__ import annotations

from typing import Callable

from ..circuit.circuit import QuantumCircuit
from . import algorithms, ansatz, applications

__all__ = [
    "BENCHMARK_GENERATORS",
    "available_benchmarks",
    "benchmark_circuit",
    "benchmark_suite",
    "paper_benchmark_names",
]

#: benchmark name -> (generator, minimum number of qubits)
BENCHMARK_GENERATORS: dict[str, tuple[Callable[[int], QuantumCircuit], int]] = {
    "ae": (algorithms.amplitude_estimation, 2),
    "dj": (algorithms.dj, 2),
    "ghz": (algorithms.ghz, 2),
    "graphstate": (algorithms.graphstate, 3),
    "groundstate": (ansatz.groundstate, 2),
    "portfolioqaoa": (applications.portfolio_qaoa, 3),
    "portfoliovqe": (ansatz.portfolio_vqe, 2),
    "pricingcall": (applications.pricing_call, 3),
    "pricingput": (applications.pricing_put, 3),
    "qaoa": (applications.qaoa, 3),
    "qft": (algorithms.qft, 2),
    "qftentangled": (algorithms.qft_entangled, 2),
    "qgan": (ansatz.qgan, 2),
    "qpeexact": (algorithms.qpe_exact, 2),
    "qpeinexact": (algorithms.qpe_inexact, 2),
    "realamprandom": (ansatz.real_amplitudes_random, 2),
    "routing": (applications.routing, 2),
    "su2random": (ansatz.efficient_su2_random, 2),
    "tsp": (applications.tsp, 4),
    "twolocalrandom": (ansatz.two_local_random, 2),
    "vqe": (ansatz.vqe, 2),
    "wstate": (algorithms.wstate, 2),
}


def paper_benchmark_names() -> tuple[str, ...]:
    """The 22 benchmark families shown in Fig. 3d-f of the paper."""
    return tuple(sorted(BENCHMARK_GENERATORS))


def available_benchmarks() -> list[str]:
    """Names of all available benchmark families."""
    return sorted(BENCHMARK_GENERATORS)


def benchmark_circuit(name: str, num_qubits: int) -> QuantumCircuit:
    """Generate one benchmark circuit by family name and qubit count."""
    if name not in BENCHMARK_GENERATORS:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {', '.join(available_benchmarks())}"
        )
    generator, min_qubits = BENCHMARK_GENERATORS[name]
    if num_qubits < min_qubits:
        raise ValueError(f"benchmark {name!r} needs at least {min_qubits} qubits")
    circuit = generator(num_qubits)
    circuit.metadata["benchmark"] = name
    circuit.metadata["num_qubits"] = num_qubits
    return circuit


def benchmark_suite(
    min_qubits: int = 2,
    max_qubits: int = 20,
    names: list[str] | None = None,
    *,
    step: int = 2,
) -> list[QuantumCircuit]:
    """Assemble a suite of benchmark circuits over a qubit range.

    The default paper-scale configuration (2-20 qubits, all 22 families)
    yields roughly 200 circuits, matching the training-set size used in the
    paper.  Smaller ranges/steps yield reduced suites for tests and quick
    benchmarks.
    """
    if names is None:
        names = available_benchmarks()
    suite: list[QuantumCircuit] = []
    for name in names:
        generator, family_min = BENCHMARK_GENERATORS[name]
        for num_qubits in range(max(min_qubits, family_min), max_qubits + 1, step):
            circuit = benchmark_circuit(name, num_qubits)
            suite.append(circuit)
    return suite
