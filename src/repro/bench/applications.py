"""Application-level benchmark circuits (MQT-Bench style).

QAOA-type combinatorial-optimization circuits (MaxCut QAOA, portfolio QAOA,
TSP, vehicle routing) and the option-pricing benchmarks (European call/put
via iterative amplitude estimation structure).
"""

from __future__ import annotations

import math

import numpy as np

from ..circuit.circuit import QuantumCircuit

__all__ = [
    "qaoa",
    "portfolio_qaoa",
    "tsp",
    "routing",
    "pricing_call",
    "pricing_put",
]


def _random_regular_edges(num_qubits: int, degree: int, rng: np.random.Generator) -> list[tuple[int, int]]:
    edges: set[tuple[int, int]] = set()
    for qubit in range(num_qubits):
        edges.add(tuple(sorted((qubit, (qubit + 1) % num_qubits))))
    target = max(num_qubits, (degree * num_qubits) // 2)
    attempts = 0
    while len(edges) < target and attempts < 30 * num_qubits:
        attempts += 1
        a, b = rng.choice(num_qubits, size=2, replace=False)
        edges.add(tuple(sorted((int(a), int(b)))))
    return sorted(edges)


def _qaoa_circuit(
    name: str,
    num_qubits: int,
    edges: list[tuple[int, int]],
    weights: list[float],
    *,
    layers: int,
    rng: np.random.Generator,
) -> QuantumCircuit:
    circuit = QuantumCircuit(num_qubits, name=name)
    for qubit in range(num_qubits):
        circuit.h(qubit)
    gammas = rng.uniform(0, math.pi, layers)
    betas = rng.uniform(0, math.pi, layers)
    for layer in range(layers):
        for (a, b), weight in zip(edges, weights):
            circuit.rzz(float(2.0 * gammas[layer] * weight), a, b)
        for qubit in range(num_qubits):
            circuit.rx(float(2.0 * betas[layer]), qubit)
    circuit.measure_all()
    return circuit


def qaoa(num_qubits: int, *, layers: int = 2, seed: int | None = None) -> QuantumCircuit:
    """MaxCut QAOA on a random 3-regular graph."""
    if num_qubits < 3:
        raise ValueError("QAOA needs at least 3 qubits")
    rng = np.random.default_rng(seed if seed is not None else num_qubits)
    edges = _random_regular_edges(num_qubits, 3, rng)
    weights = [1.0] * len(edges)
    return _qaoa_circuit(f"qaoa_{num_qubits}", num_qubits, edges, weights, layers=layers, rng=rng)


def portfolio_qaoa(num_qubits: int, *, layers: int = 1, seed: int | None = None) -> QuantumCircuit:
    """Portfolio-optimization QAOA: fully-connected weighted cost Hamiltonian."""
    if num_qubits < 3:
        raise ValueError("portfolio QAOA needs at least 3 qubits")
    rng = np.random.default_rng(seed if seed is not None else num_qubits + 11)
    edges = [(i, j) for i in range(num_qubits) for j in range(i + 1, num_qubits)]
    weights = [float(w) for w in rng.uniform(0.1, 1.0, len(edges))]
    return _qaoa_circuit(
        f"portfolioqaoa_{num_qubits}", num_qubits, edges, weights, layers=layers, rng=rng
    )


def tsp(num_qubits: int, *, seed: int | None = None) -> QuantumCircuit:
    """Travelling-salesman QAOA instance (quadratic assignment cost Hamiltonian).

    MQT Bench encodes an n-city TSP on n^2 qubits; to cover the full 2-20
    qubit range the cost Hamiltonian here couples qubit pairs within "city
    blocks" and between neighbouring blocks.
    """
    if num_qubits < 4:
        raise ValueError("TSP needs at least 4 qubits")
    rng = np.random.default_rng(seed if seed is not None else num_qubits + 13)
    block = max(2, int(round(math.sqrt(num_qubits))))
    edges: set[tuple[int, int]] = set()
    for start in range(0, num_qubits, block):
        members = list(range(start, min(start + block, num_qubits)))
        for i, a in enumerate(members):
            for b in members[i + 1 :]:
                edges.add((a, b))
        if start + block < num_qubits:
            edges.add((members[-1], start + block))
    weights = [float(w) for w in rng.uniform(0.2, 1.5, len(edges))]
    return _qaoa_circuit(f"tsp_{num_qubits}", num_qubits, sorted(edges), weights, layers=2, rng=rng)


def routing(num_qubits: int, *, seed: int | None = None) -> QuantumCircuit:
    """Vehicle-routing QAOA instance on a sparse (line + chords) graph."""
    if num_qubits < 2:
        raise ValueError("routing needs at least 2 qubits")
    rng = np.random.default_rng(seed if seed is not None else num_qubits + 17)
    edges = [(i, i + 1) for i in range(num_qubits - 1)]
    for i in range(0, num_qubits - 2, 2):
        edges.append((i, i + 2))
    weights = [float(w) for w in rng.uniform(0.5, 1.5, len(edges))]
    return _qaoa_circuit(f"routing_{num_qubits}", num_qubits, edges, weights, layers=2, rng=rng)


def _pricing(num_qubits: int, name: str, *, strike_fraction: float, seed: int) -> QuantumCircuit:
    """European-option pricing circuit (uncertainty model + comparator + AE readout).

    The real benchmark loads a log-normal distribution, compares against the
    strike price and estimates the payoff amplitude.  The same three-stage
    structure is reproduced: RY loading layer with linear entanglement,
    a cascade of controlled rotations implementing the payoff comparator, and
    an inverse-QFT style readout on the estimation qubits.
    """
    if num_qubits < 3:
        raise ValueError("option pricing needs at least 3 qubits")
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits, name=name)
    objective = num_qubits - 1
    state_qubits = list(range(num_qubits - 1))

    # 1) uncertainty model: load a smooth distribution over the state register
    for qubit in state_qubits:
        circuit.ry(float(rng.uniform(0.2, math.pi - 0.2)), qubit)
    for a, b in zip(state_qubits, state_qubits[1:]):
        circuit.cx(a, b)
    for qubit in state_qubits:
        circuit.ry(float(rng.uniform(0.1, 0.6)), qubit)

    # 2) payoff comparator: controlled rotations onto the objective qubit
    slope = math.pi * strike_fraction
    for i, qubit in enumerate(state_qubits):
        circuit.cry(float(slope / (2**i)), qubit, objective)

    # 3) amplitude-estimation style readout
    for a, b in zip(reversed(state_qubits[1:]), reversed(state_qubits[:-1])):
        circuit.cp(float(-math.pi / 2), a, b)
        circuit.h(b)
    circuit.measure_all()
    return circuit


def pricing_call(num_qubits: int, *, seed: int | None = None) -> QuantumCircuit:
    """European call option pricing benchmark."""
    return _pricing(
        num_qubits,
        f"pricingcall_{num_qubits}",
        strike_fraction=0.7,
        seed=seed if seed is not None else num_qubits + 19,
    )


def pricing_put(num_qubits: int, *, seed: int | None = None) -> QuantumCircuit:
    """European put option pricing benchmark."""
    return _pricing(
        num_qubits,
        f"pricingput_{num_qubits}",
        strike_fraction=0.4,
        seed=seed if seed is not None else num_qubits + 23,
    )
