"""Observability: request tracing, structured logging, slow-request capture.

See :mod:`repro.obs.trace` for the span model and propagation seams,
:mod:`repro.obs.log` for trace-stamped JSON logging, and
:mod:`repro.obs.slowlog` for the gateway's bounded slow-request log.
"""

from .log import JsonFormatter, configure_json_logging, get_logger
from .slowlog import SlowRequestLog
from .trace import (
    Span,
    SpanContext,
    Tracer,
    activate,
    as_context,
    current_span,
    new_span_id,
    new_trace_id,
    span,
    timed_span,
    tracer,
    valid_trace_id,
)

__all__ = [
    "JsonFormatter",
    "SlowRequestLog",
    "Span",
    "SpanContext",
    "Tracer",
    "activate",
    "as_context",
    "configure_json_logging",
    "current_span",
    "get_logger",
    "new_span_id",
    "new_trace_id",
    "span",
    "timed_span",
    "tracer",
    "valid_trace_id",
]
