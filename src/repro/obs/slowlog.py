"""A bounded keep-the-worst log of slow requests, with span breakdowns.

The gateway's latency percentiles say *that* the tail is slow; the slow
request log says *which* requests were slow and *where* the time went.  It
keeps the top-N completed requests by duration (a min-heap of capacity N:
admission is O(log N), cheap enough for the request hot path) and stores a
flattened span breakdown per entry rather than the full tree, so the
dashboard can render "queue.wait 1.2s / lane.execute 0.3s / stage.routing
0.2s" without shipping unbounded JSON.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time

__all__ = ["SlowRequestLog"]

#: hard cap on rows kept per entry's span breakdown — a pathological tree
#: (e.g. a fixed-point controller looping hundreds of stages) must not turn
#: the ops endpoint into a megabyte payload
_MAX_BREAKDOWN_ROWS = 40


def _flatten(tree: "dict | None") -> list[dict]:
    """Pre-order ``{name, duration, depth, status}`` rows from a span-tree dict."""
    if not tree:
        return []
    rows = []
    stack = [(0, tree)]
    while stack and len(rows) < _MAX_BREAKDOWN_ROWS:
        depth, node = stack.pop()
        rows.append(
            {
                "name": node.get("name", "?"),
                "duration": node.get("duration"),
                "depth": depth,
                "status": node.get("status", "ok"),
            }
        )
        children = node.get("children") or []
        stack.extend((depth + 1, child) for child in reversed(children))
    return rows


class SlowRequestLog:
    """Thread-safe top-N-by-duration log of finished requests."""

    def __init__(self, capacity: int = 32):
        if capacity < 1:
            raise ValueError("SlowRequestLog capacity must be >= 1")
        self.capacity = capacity
        self._heap: list[tuple[float, int, dict]] = []
        self._seq = itertools.count()
        self._lock = threading.Lock()

    def observe(
        self,
        *,
        trace_id: str,
        name: str,
        seconds: float,
        tree: "dict | None" = None,
        tenant: "str | None" = None,
        backend: "str | None" = None,
        status: str = "ok",
    ) -> bool:
        """Record a finished request; returns whether it made the top-N cut."""
        entry = {
            "trace_id": trace_id,
            "name": name,
            "seconds": seconds,
            "tenant": tenant,
            "backend": backend,
            "status": status,
            "finished_at": time.time(),
            "breakdown": _flatten(tree),
        }
        with self._lock:
            item = (seconds, next(self._seq), entry)
            if len(self._heap) < self.capacity:
                heapq.heappush(self._heap, item)
                return True
            if seconds <= self._heap[0][0]:
                return False
            heapq.heapreplace(self._heap, item)
            return True

    def snapshot(self) -> list[dict]:
        """Entries slowest-first (each a plain JSON-able dict copy)."""
        with self._lock:
            items = sorted(self._heap, key=lambda it: (-it[0], it[1]))
        return [dict(entry, breakdown=list(entry["breakdown"])) for _, _, entry in items]

    def clear(self) -> None:
        with self._lock:
            self._heap.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)
