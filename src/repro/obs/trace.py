"""Request tracing: spans, trace contexts, and their propagation seams.

One compile request crosses a lot of threads on its way through the stack —
an HTTP handler thread in the gateway, the service's scheduler thread, a lane
worker thread (or a lane *process*), and finally the pass pipeline.  The flat
:class:`~repro.profiling.ProfileRegistry` answers "how much time does the
fleet spend in stage X overall"; this module answers "where did *this*
request spend its 1.3 seconds".

The building blocks are deliberately stdlib-only and self-contained:

* :class:`Span` — one named, timed operation.  Spans form a tree (a span's
  children are the operations it performed); the root of the tree carries the
  ``trace_id`` every other span shares.  Clocks are monotonic
  (``perf_counter`` for durations) with a wall-clock start stamp for display.
* :class:`SpanContext` — the picklable ``(trace_id, span_id)`` pair used to
  continue a trace across a boundary that cannot share the ``Span`` object
  itself: the service RPC protocol and the process-lane pickle boundary.
* :class:`Tracer` — mints trace ids and root spans.  A module-global tracer
  (:func:`tracer`) serves the default case.

Propagation happens two ways, mirroring how the request actually travels:

* **Thread-local** — :func:`activate` installs a span as the calling thread's
  current span; :func:`span` / :func:`timed_span` then attach children to it.
  Instrumented library code (the pass pipeline) never needs to see a request
  object: if a span is active on its thread it records, otherwise every
  helper is a no-op, which is what keeps tracing strictly pay-for-what-you-use.
* **Explicit context** — code that hops threads (the service's scheduler
  hands requests to lane workers) or processes (lane pools, the RPC server)
  carries a :class:`Span` or :class:`SpanContext` in its payload and
  re-activates it on the far side with :func:`activate`, or parents new spans
  onto it via ``Span(..., context=ctx)``.

Span trees serialise to plain JSON-able dicts (:meth:`Span.to_dict` /
:meth:`Span.from_dict`), which is how a finished trace travels back to the
caller inside ``CompilationResult.metadata["trace"]``.
"""

from __future__ import annotations

import os
import re
import threading
import time
from contextlib import contextmanager
from typing import NamedTuple

__all__ = [
    "Span",
    "SpanContext",
    "Tracer",
    "activate",
    "as_context",
    "current_span",
    "new_span_id",
    "new_trace_id",
    "span",
    "timed_span",
    "tracer",
    "valid_trace_id",
]

#: inbound trace ids (e.g. an ``X-Repro-Trace-Id`` header) must look like this
#: — anything else is replaced with a freshly minted id rather than echoed
#: back verbatim into logs and metrics
_TRACE_ID_RE = re.compile(r"^[A-Za-z0-9_-]{4,128}$")


def new_trace_id() -> str:
    """A fresh 128-bit trace id (32 hex chars)."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh 64-bit span id (16 hex chars)."""
    return os.urandom(8).hex()


def valid_trace_id(value) -> bool:
    """Whether ``value`` is acceptable as a caller-supplied trace id."""
    return isinstance(value, str) and bool(_TRACE_ID_RE.match(value))


class SpanContext(NamedTuple):
    """The picklable continuation point of a trace: ``(trace_id, span_id)``.

    Everything needed to parent new spans onto an existing trace from another
    thread, process, or host — and nothing else, so it crosses the service's
    RPC protocol and the process-lane pickle boundary as plain data.
    """

    trace_id: str
    span_id: str

    def to_dict(self) -> dict:
        return {"trace_id": self.trace_id, "span_id": self.span_id}


def as_context(trace) -> "SpanContext | None":
    """Normalise the accepted trace carriers to a :class:`SpanContext`.

    Accepts a :class:`Span`, a :class:`SpanContext`, a ``{"trace_id",
    "span_id"}`` dict (the RPC wire shape), or ``None`` — in which case the
    calling thread's current span (if any) is used, which is what makes
    ambient propagation work without threading a context argument through
    every call site.
    """
    if trace is None:
        active = current_span()
        return active.context() if active is not None else None
    if isinstance(trace, SpanContext):
        return trace
    if isinstance(trace, Span):
        return trace.context()
    if isinstance(trace, dict) and "trace_id" in trace and "span_id" in trace:
        return SpanContext(str(trace["trace_id"]), str(trace["span_id"]))
    raise TypeError(
        f"cannot interpret {trace!r} as a trace context; expected a Span, "
        "SpanContext, {'trace_id', 'span_id'} dict, or None"
    )


class Span:
    """One named, timed operation in a trace tree.

    Children may be added from any thread (the list is guarded by a lock);
    :meth:`finish` is idempotent, so racing completion paths (a worker and a
    shutdown drain, say) cannot double-close a span.  ``duration`` is
    measured on the monotonic clock; ``start`` is a wall-clock stamp for
    display only.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start",
        "duration",
        "status",
        "attrs",
        "children",
        "_t0",
        "_lock",
    )

    def __init__(
        self,
        name: str,
        *,
        trace_id: "str | None" = None,
        parent_id: "str | None" = None,
        context: "SpanContext | None" = None,
        attrs: "dict | None" = None,
    ):
        if context is not None:
            trace_id, parent_id = context.trace_id, context.span_id
        self.name = name
        self.trace_id = trace_id or new_trace_id()
        self.span_id = new_span_id()
        self.parent_id = parent_id
        self.start = time.time()
        self.duration: "float | None" = None
        self.status = "ok"
        self.attrs = dict(attrs) if attrs else {}
        self.children: list[Span] = []
        self._t0 = time.perf_counter()
        self._lock = threading.Lock()

    # -- building the tree -------------------------------------------------------------

    def child(self, name: str, attrs: "dict | None" = None) -> "Span":
        """Start a child span (same trace, parented here); thread-safe."""
        node = Span(
            name, trace_id=self.trace_id, parent_id=self.span_id, attrs=attrs
        )
        with self._lock:
            self.children.append(node)
        return node

    def event(self, name: str, **attrs) -> "Span":
        """A zero-ish-duration child marking a point event (cache hit, expiry)."""
        node = self.child(name, attrs=attrs or None)
        node.finish()
        return node

    def add(self, subtree: "Span | dict") -> "Span":
        """Graft an already-built subtree (a :class:`Span` or its dict form).

        This is the join point for trees built on the far side of a pickle or
        RPC boundary: the remote side serialises its spans, the local side
        grafts them under the span that spawned the remote work.  Grafting a
        live :class:`Span` shares the object — a coalesced follower's request
        span adopts the owner's *actual* execute span, ids and all.
        """
        node = subtree if isinstance(subtree, Span) else Span.from_dict(subtree)
        with self._lock:
            self.children.append(node)
        return node

    def set(self, **attrs) -> "Span":
        """Attach attributes (merged over existing ones)."""
        with self._lock:
            self.attrs.update(attrs)
        return self

    def finish(self, status: "str | None" = None, **attrs) -> float:
        """Close the span (idempotent); returns its duration in seconds."""
        with self._lock:
            if self.duration is None:
                self.duration = time.perf_counter() - self._t0
            if status is not None:
                self.status = status
            if attrs:
                self.attrs.update(attrs)
            return self.duration

    @property
    def finished(self) -> bool:
        return self.duration is not None

    def context(self) -> SpanContext:
        """The continuation context for parenting remote/child work here."""
        return SpanContext(self.trace_id, self.span_id)

    # -- (de)serialisation -------------------------------------------------------------

    def to_dict(self) -> dict:
        """The span tree as a JSON-able dict (unfinished spans report ``None``)."""
        with self._lock:
            children = list(self.children)
            payload = {
                "name": self.name,
                "trace_id": self.trace_id,
                "span_id": self.span_id,
                "parent_id": self.parent_id,
                "start": self.start,
                "duration": self.duration,
                "status": self.status,
                "attrs": dict(self.attrs),
            }
        payload["children"] = [child.to_dict() for child in children]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        """Rebuild a span tree from :meth:`to_dict` output (ids preserved)."""
        node = cls.__new__(cls)
        node.name = payload["name"]
        node.trace_id = payload.get("trace_id") or new_trace_id()
        node.span_id = payload.get("span_id") or new_span_id()
        node.parent_id = payload.get("parent_id")
        node.start = float(payload.get("start") or 0.0)
        node.duration = payload.get("duration")
        node.status = payload.get("status", "ok")
        node.attrs = dict(payload.get("attrs") or {})
        node._t0 = 0.0
        node._lock = threading.Lock()
        node.children = [cls.from_dict(c) for c in payload.get("children") or []]
        return node

    def walk(self):
        """Yield ``(depth, span)`` over the tree, pre-order."""
        stack = [(0, self)]
        while stack:
            depth, node = stack.pop()
            yield depth, node
            with node._lock:
                children = list(node.children)
            stack.extend((depth + 1, child) for child in reversed(children))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.duration:.6f}s" if self.duration is not None else "open"
        return f"Span({self.name!r}, trace={self.trace_id[:8]}, {state})"


class Tracer:
    """Mints trace ids and root spans; holds the (rarely needed) kill switch."""

    def __init__(self, *, enabled: bool = True):
        self.enabled = enabled

    def start_trace(
        self,
        name: str,
        *,
        trace_id: "str | None" = None,
        context: "SpanContext | None" = None,
        attrs: "dict | None" = None,
    ) -> "Span | None":
        """Begin a trace (or continue one from ``context``); ``None`` if disabled."""
        if not self.enabled:
            return None
        if context is not None:
            return Span(name, context=context, attrs=attrs)
        return Span(name, trace_id=trace_id, attrs=attrs)


_TRACER = Tracer()


def tracer() -> Tracer:
    """The process-global :class:`Tracer`."""
    return _TRACER


# -- thread-local propagation ----------------------------------------------------------

_ACTIVE = threading.local()


def current_span() -> "Span | None":
    """The calling thread's active span, if any."""
    return getattr(_ACTIVE, "span", None)


@contextmanager
def activate(target: "Span | None"):
    """Install ``target`` as the current span for the duration of the block.

    This is the explicit-context seam: a worker thread that received a span
    through a queue payload activates it so that downstream library code
    (:func:`span`, :func:`timed_span`, the JSON log formatter) attaches to
    the right trace.  ``activate(None)`` is a no-op block, which lets call
    sites write one ``with`` statement for both traced and untraced requests.
    """
    if target is None:
        yield None
        return
    previous = getattr(_ACTIVE, "span", None)
    _ACTIVE.span = target
    try:
        yield target
    finally:
        _ACTIVE.span = previous


@contextmanager
def span(name: str, attrs: "dict | None" = None):
    """A child span of the thread's current span, active for the block.

    No current span means no trace is in progress: the block runs untraced
    (yields ``None``) at the cost of one thread-local read.
    """
    parent = current_span()
    if parent is None:
        yield None
        return
    node = parent.child(name, attrs=attrs)
    previous = parent
    _ACTIVE.span = node
    try:
        yield node
    except BaseException:
        node.finish(status="error")
        raise
    else:
        node.finish()
    finally:
        _ACTIVE.span = previous


@contextmanager
def timed_span(name: str, *, items: int = 0, attrs: "dict | None" = None):
    """One measurement feeding both a child span and the profile registry.

    The instrumented hot paths (pipeline stages) historically recorded into
    :class:`~repro.profiling.ProfileRegistry` under ``registry.enabled``;
    this helper keeps that behaviour bit-for-bit (same names, same ``items``)
    while *also* emitting a span when a trace is active — one ``perf_counter``
    pair serves both sinks, so ``--profile`` aggregates and per-request spans
    can never disagree about a stage's duration.  With tracing inactive and
    profiling disabled the block runs untimed.
    """
    from ..profiling import profiler

    parent = current_span()
    registry = profiler()
    if parent is None and not registry.enabled:
        yield None
        return
    node = parent.child(name, attrs=attrs) if parent is not None else None
    if node is not None:
        previous = parent
        _ACTIVE.span = node
    start = time.perf_counter()
    try:
        yield node
    except BaseException:
        if node is not None:
            node.finish(status="error")
        raise
    finally:
        elapsed = time.perf_counter() - start
        if registry.enabled:
            registry.record(name, elapsed, items)
        if node is not None:
            with node._lock:
                if node.duration is None:
                    node.duration = elapsed
                    if items:
                        node.attrs.setdefault("items", items)
            _ACTIVE.span = previous
