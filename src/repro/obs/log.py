"""Structured JSON logging stamped with the active trace context.

`repro` components log through ordinary :mod:`logging` loggers under the
``repro`` namespace; this module supplies the production formatter.  Each
record becomes one JSON object per line with a fixed envelope (``ts``,
``level``, ``logger``, ``msg``) plus whatever extras the call site attached
via ``logger.info(..., extra={...})`` — and, crucially, the calling thread's
active ``trace_id``/``span_id`` (see :mod:`repro.obs.trace`), so a grep for
one trace id surfaces the gateway access line, the service scheduling
decisions, and any pipeline warnings for that request in order.

Opt in with ``--json-logs`` on ``python -m repro.gateway`` / ``python -m
repro.service``, or programmatically via :func:`configure_json_logging`.
Nothing here installs handlers at import time: library code stays silent
under the standard "logging is the application's decision" contract.
"""

from __future__ import annotations

import json
import logging
import sys
import time

from .trace import current_span

__all__ = ["JsonFormatter", "configure_json_logging", "get_logger"]

#: LogRecord attributes that are envelope/bookkeeping, not user extras
_RESERVED = frozenset(
    (
        "name", "msg", "args", "levelname", "levelno", "pathname", "filename",
        "module", "exc_info", "exc_text", "stack_info", "lineno", "funcName",
        "created", "msecs", "relativeCreated", "thread", "threadName",
        "processName", "process", "message", "asctime", "taskName",
    )
)


def _json_safe(value):
    try:
        json.dumps(value)
        return value
    except (TypeError, ValueError):
        return repr(value)


class JsonFormatter(logging.Formatter):
    """Format records as single-line JSON objects with trace stamps."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "msg": record.getMessage(),
        }
        active = current_span()
        if active is not None:
            payload["trace_id"] = active.trace_id
            payload["span_id"] = active.span_id
        for key, value in record.__dict__.items():
            if key in _RESERVED or key.startswith("_") or key in payload:
                continue
            payload[key] = _json_safe(value)
        if record.exc_info and record.exc_info[1] is not None:
            payload["error"] = repr(record.exc_info[1])
        return json.dumps(payload, separators=(",", ":"), sort_keys=False)


def configure_json_logging(
    *,
    level: int = logging.INFO,
    stream=None,
    logger: str = "repro",
) -> logging.Logger:
    """Route the ``repro`` logger tree to JSON-per-line on ``stream``.

    Idempotent for the common case: an existing handler carrying a
    :class:`JsonFormatter` on the same logger is replaced rather than
    duplicated, so calling this from both a CLI entry point and a test
    fixture does not double every line.
    """
    root = logging.getLogger(logger)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonFormatter())
    for existing in list(root.handlers):
        if isinstance(existing.formatter, JsonFormatter):
            root.removeHandler(existing)
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False
    return root


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` namespace (``repro.<name>``)."""
    if name.startswith("repro"):
        return logging.getLogger(name)
    return logging.getLogger(f"repro.{name}")


# re-exported for call sites that want a wall-clock stamp matching ``ts``
now = time.time
