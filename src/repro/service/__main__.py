"""``python -m repro.service`` — run a compile server for remote clients.

Starts a :class:`~repro.service.CompileService` (optionally backed by a
shared :class:`~repro.service.CacheServer`) and exposes it over a
``multiprocessing`` manager::

    $ python -m repro.service --port 7707
    repro compile service listening on 127.0.0.1:7707
    authkey: 6d79736563726574...

Clients connect with the printed credentials::

    client = ServiceClient(address=("127.0.0.1", 7707), authkey=bytes.fromhex("..."))

The process serves until interrupted; Ctrl-C drains in-flight work before
exiting.

Cluster mode
------------

Several hosts become one fabric with three flag families:

* ``--serve-cache`` / ``--cache-bind HOST:PORT`` run a standalone TCP cache
  server (no compile service) that sibling hosts mount as a shard.
* ``--cache-server HOST:PORT`` (repeatable) mounts one or more such shards
  as this host's result store (consistent-hash sharded when several are
  given).  All hosts must share the secret from ``--cache-authkey-file``.
* ``--peer HOST:PORT`` (repeatable) adds sibling compile hosts; the served
  object becomes a :class:`~repro.service.ForwardingService` that spills
  overload to them (``--spill-threshold`` sets the local backlog bound).
  Peers must share this server's authkey (``--authkey-file``).

A two-host, one-shard cluster::

    hostC$ python -m repro.service --serve-cache --cache-bind 0.0.0.0:7800 \\
               --cache-authkey-file secret.key
    hostA$ python -m repro.service --host 0.0.0.0 --port 7707 \\
               --authkey-file svc.key --cache-server hostC:7800 \\
               --cache-authkey-file secret.key --peer hostB:7707
    hostB$ python -m repro.service --host 0.0.0.0 --port 7707 \\
               --authkey-file svc.key --cache-server hostC:7800 \\
               --cache-authkey-file secret.key --peer hostA:7707
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from .client import ServiceClient, ServiceManager
from .service import SERVICE_RPC_METHODS, CompileService
from .store import CacheServer, SharedCacheStore


def _parse_endpoint(value: str) -> tuple[str, int]:
    """``HOST:PORT`` → ``(host, port)`` with a readable error."""
    host, sep, port = value.rpartition(":")
    if not sep or not host:
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT, got {value!r}"
        )
    try:
        return host, int(port)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid port in {value!r}") from None


def _load_authkey(path: str | None, *, generate_to: str | None = None) -> bytes | None:
    """Read a hex-encoded shared secret from ``path``.

    With ``generate_to`` set and the file missing, a fresh key is generated
    and written there (0600), so the first host of a cluster can mint the
    secret that the others copy.
    """
    if path is None:
        return None
    file = Path(path)
    if not file.exists():
        if generate_to is None:
            raise SystemExit(f"authkey file not found: {path}")
        key = os.urandom(16)
        file.write_text(key.hex() + "\n")
        file.chmod(0o600)
        return key
    text = file.read_text().strip()
    try:
        return bytes.fromhex(text)
    except ValueError:
        raise SystemExit(f"authkey file {path} is not hex-encoded") from None


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve repro compilations to remote ServiceClients.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default: loopback)")
    parser.add_argument("--port", type=int, default=0, help="port (default: OS-assigned)")
    parser.add_argument(
        "--bind",
        type=_parse_endpoint,
        default=None,
        metavar="HOST:PORT",
        help="bind address as one HOST:PORT (overrides --host/--port)",
    )
    parser.add_argument(
        "--authkey",
        default=None,
        help="hex-encoded shared secret (default: freshly generated and printed)",
    )
    parser.add_argument(
        "--authkey-file",
        default=None,
        metavar="PATH",
        help="file holding the hex-encoded service secret; generated there on "
        "first use, so every host of a cluster can share one key",
    )
    parser.add_argument(
        "--max-workers",
        type=int,
        default=2,
        help="upper worker bound per backend lane (the autoscaler grows lanes "
        "toward it under load)",
    )
    parser.add_argument(
        "--min-workers",
        type=int,
        default=1,
        help="lower worker bound per backend lane (idle lanes shrink back to it)",
    )
    parser.add_argument(
        "--no-autoscale",
        action="store_true",
        help="pin every lane at --max-workers instead of autoscaling",
    )
    parser.add_argument(
        "--autoscale-interval",
        type=float,
        default=0.25,
        help="seconds between lane-supervisor sweeps",
    )
    parser.add_argument(
        "--process-backends",
        default="",
        help="comma-separated backend names to run on process lanes",
    )
    parser.add_argument(
        "--cache-size", type=int, default=4096, help="capacity of the shared result cache"
    )
    parser.add_argument(
        "--cache-policy",
        choices=("lru", "cost"),
        default="lru",
        help="result-cache eviction policy: pure LRU, or cost-aware (keeps "
        "expensive compilations resident, evicts cheap-to-recompute entries first)",
    )
    parser.add_argument(
        "--shared-cache",
        action="store_true",
        help="back the result cache by a local cache-server process (lets "
        "process-lane workers and external cache clients share entries)",
    )
    cluster = parser.add_argument_group("cluster fabric")
    cluster.add_argument(
        "--serve-cache",
        action="store_true",
        help="run a standalone TCP cache server instead of a compile service "
        "(a shard that sibling hosts mount with --cache-server)",
    )
    cluster.add_argument(
        "--cache-bind",
        type=_parse_endpoint,
        default=("127.0.0.1", 7800),
        metavar="HOST:PORT",
        help="bind address for --serve-cache (default: 127.0.0.1:7800; use "
        "0.0.0.0 to accept other machines)",
    )
    cluster.add_argument(
        "--cache-server",
        type=_parse_endpoint,
        action="append",
        default=None,
        metavar="HOST:PORT",
        help="mount a remote TCP cache server as the result store (repeat for "
        "consistent-hash sharding across several)",
    )
    cluster.add_argument(
        "--cache-authkey-file",
        default=None,
        metavar="PATH",
        help="file holding the hex-encoded cache-server secret (required with "
        "--cache-server; generated on first use with --serve-cache)",
    )
    cluster.add_argument(
        "--cache-timeout",
        type=float,
        default=2.0,
        help="seconds one shard call may take before the shard is marked down "
        "and callers fall back to local compute",
    )
    cluster.add_argument(
        "--peer",
        type=_parse_endpoint,
        action="append",
        default=None,
        metavar="HOST:PORT",
        help="sibling compile host to spill overload to (repeatable; peers "
        "must share this server's authkey)",
    )
    cluster.add_argument(
        "--spill-threshold",
        type=int,
        default=4,
        help="local backlog (queued + in-flight) at which submissions spill "
        "to the least-loaded ready peer",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="enable hot-path profiling: per-pass and per-kernel wall-time "
        "counters, exposed in stats() under 'profiling' (and through the "
        "gateway's /v1/stats and /metrics)",
    )
    parser.add_argument(
        "--json-logs",
        action="store_true",
        help="emit structured JSON logs on stderr (one object per line, "
        "stamped with the active trace_id/span_id)",
    )
    return parser


def _serve_cache(args) -> int:
    """Run a standalone TCP cache shard until interrupted."""
    authkey = _load_authkey(args.cache_authkey_file, generate_to=args.cache_authkey_file)
    server = CacheServer(
        args.cache_size,
        policy=args.cache_policy,
        address=args.cache_bind,
        authkey=authkey,
    )
    host, port = server.address
    print(f"repro cache server listening on {host}:{port}", flush=True)
    if args.cache_authkey_file:
        print(f"authkey file: {args.cache_authkey_file}", flush=True)
    else:
        print(f"authkey: {server.authkey.hex()}", flush=True)
    try:
        import threading

        threading.Event().wait()  # serve until interrupted
    except (KeyboardInterrupt, SystemExit):
        pass
    finally:
        print("cache server stopping ...", flush=True)
        server.shutdown()
        print("cache server stopped", flush=True)
    return 0


def _build_store(args, cache_server):
    """The service's result store from the CLI's cache flags."""
    if args.cache_server:
        cache_authkey = _load_authkey(args.cache_authkey_file)
        if cache_authkey is None:
            raise SystemExit("--cache-server requires --cache-authkey-file")
        shards = [
            SharedCacheStore(address, cache_authkey) for address in args.cache_server
        ]
        if len(shards) == 1:
            return shards[0]
        from .sharding import ShardedCacheStore

        return ShardedCacheStore(shards, timeout=args.cache_timeout)
    if cache_server is not None:
        return cache_server.store()
    if args.cache_policy == "cost":
        from ..pipeline.properties import CostAwareStore

        return CostAwareStore(args.cache_size)
    return None


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.json_logs:
        from ..obs import configure_json_logging

        configure_json_logging()
    if args.serve_cache:
        return _serve_cache(args)
    if args.profile:
        from ..profiling import enable_profiling

        enable_profiling()
    if args.bind is not None:
        args.host, args.port = args.bind
    authkey = None
    if args.authkey:
        authkey = bytes.fromhex(args.authkey)
    elif args.authkey_file:
        authkey = _load_authkey(args.authkey_file, generate_to=args.authkey_file)
    if authkey is None:
        authkey = os.urandom(16)
    process_backends = tuple(
        name.strip() for name in args.process_backends.split(",") if name.strip()
    )

    cache_server = (
        CacheServer(args.cache_size, policy=args.cache_policy)
        if args.shared_cache and not args.cache_server
        else None
    )
    store = _build_store(args, cache_server)
    service = CompileService(
        store=store,
        process_backends=process_backends,
        max_workers=args.max_workers,
        min_workers=args.min_workers,
        autoscale=not args.no_autoscale,
        autoscale_interval=args.autoscale_interval,
        cache_size=args.cache_size,
    )
    served = service
    if args.peer:
        from .forwarding import ForwardingService

        served = ForwardingService(service, spill_threshold=args.spill_threshold)
        for host, port in args.peer:
            # Peers may still be booting: register lazily by address so one
            # host of the cluster can start first.
            try:
                client = ServiceClient(address=(host, port), authkey=authkey)
                served.add_peer(client, name=f"{host}:{port}")
            except Exception as exc:  # noqa: BLE001 - peer not up yet
                print(f"peer {host}:{port} not reachable yet ({exc}); retrying in background", flush=True)
                _retry_peer_in_background(served, (host, port), authkey)

    class _ServerManager(ServiceManager):
        """Server-side manager bound to this process's service instance."""

    _ServerManager.register(
        "compile_service", callable=lambda: served, exposed=SERVICE_RPC_METHODS
    )
    manager = _ServerManager(address=(args.host, args.port), authkey=authkey)
    server = manager.get_server()
    host, port = server.address
    print(f"repro compile service listening on {host}:{port}", flush=True)
    print(f"authkey: {authkey.hex()}", flush=True)
    if args.cache_server:
        shards = ", ".join(f"{h}:{p}" for h, p in args.cache_server)
        print(f"cache shards: {shards}", flush=True)
    if args.peer:
        peers = ", ".join(f"{h}:{p}" for h, p in args.peer)
        print(f"peers: {peers}", flush=True)
    try:
        # serve_forever returns on KeyboardInterrupt/SystemExit.
        server.serve_forever()
    finally:
        print("draining compile service ...", flush=True)
        if served is not service:
            served.shutdown(drain=True)
        else:
            service.shutdown(drain=True)
        if cache_server is not None:
            cache_server.shutdown()
        print("compile service stopped", flush=True)
    return 0


def _retry_peer_in_background(forwarder, address: tuple, authkey: bytes) -> None:
    """Keep trying to connect a not-yet-up peer without blocking startup."""
    import threading
    import time as _time

    def attempt() -> None:
        while True:
            _time.sleep(2.0)
            try:
                client = ServiceClient(address=address, authkey=authkey)
            except Exception:  # noqa: BLE001 - still booting
                continue
            try:
                forwarder.add_peer(client, name=f"{address[0]}:{address[1]}")
            except Exception:  # noqa: BLE001
                client.close()
                continue
            print(f"peer {address[0]}:{address[1]} connected", flush=True)
            return

    threading.Thread(target=attempt, name="peer-connect", daemon=True).start()


if __name__ == "__main__":
    sys.exit(main())
