"""``python -m repro.service`` — run a compile server for remote clients.

Starts a :class:`~repro.service.CompileService` (optionally backed by a
shared :class:`~repro.service.CacheServer`) and exposes it over a
``multiprocessing`` manager::

    $ python -m repro.service --port 7707
    repro compile service listening on 127.0.0.1:7707
    authkey: 6d79736563726574...

Clients connect with the printed credentials::

    client = ServiceClient(address=("127.0.0.1", 7707), authkey=bytes.fromhex("..."))

The process serves until interrupted; Ctrl-C drains in-flight work before
exiting.
"""

from __future__ import annotations

import argparse
import os
import sys

from .client import ServiceManager
from .service import SERVICE_RPC_METHODS, CompileService
from .store import CacheServer


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve repro compilations to remote ServiceClients.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default: loopback)")
    parser.add_argument("--port", type=int, default=0, help="port (default: OS-assigned)")
    parser.add_argument(
        "--authkey",
        default=None,
        help="hex-encoded shared secret (default: freshly generated and printed)",
    )
    parser.add_argument(
        "--max-workers",
        type=int,
        default=2,
        help="upper worker bound per backend lane (the autoscaler grows lanes "
        "toward it under load)",
    )
    parser.add_argument(
        "--min-workers",
        type=int,
        default=1,
        help="lower worker bound per backend lane (idle lanes shrink back to it)",
    )
    parser.add_argument(
        "--no-autoscale",
        action="store_true",
        help="pin every lane at --max-workers instead of autoscaling",
    )
    parser.add_argument(
        "--autoscale-interval",
        type=float,
        default=0.25,
        help="seconds between lane-supervisor sweeps",
    )
    parser.add_argument(
        "--process-backends",
        default="",
        help="comma-separated backend names to run on process lanes",
    )
    parser.add_argument(
        "--cache-size", type=int, default=4096, help="capacity of the shared result cache"
    )
    parser.add_argument(
        "--cache-policy",
        choices=("lru", "cost"),
        default="lru",
        help="result-cache eviction policy: pure LRU, or cost-aware (keeps "
        "expensive compilations resident, evicts cheap-to-recompute entries first)",
    )
    parser.add_argument(
        "--shared-cache",
        action="store_true",
        help="back the result cache by a cache-server process (lets process-lane "
        "workers and external cache clients share entries)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="enable hot-path profiling: per-pass and per-kernel wall-time "
        "counters, exposed in stats() under 'profiling' (and through the "
        "gateway's /v1/stats and /metrics)",
    )
    parser.add_argument(
        "--json-logs",
        action="store_true",
        help="emit structured JSON logs on stderr (one object per line, "
        "stamped with the active trace_id/span_id)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.json_logs:
        from ..obs import configure_json_logging

        configure_json_logging()
    if args.profile:
        from ..profiling import enable_profiling

        enable_profiling()
    authkey = bytes.fromhex(args.authkey) if args.authkey else os.urandom(16)
    process_backends = tuple(
        name.strip() for name in args.process_backends.split(",") if name.strip()
    )

    cache_server = (
        CacheServer(args.cache_size, policy=args.cache_policy) if args.shared_cache else None
    )
    store = cache_server.store() if cache_server else None
    if store is None and args.cache_policy == "cost":
        from ..pipeline.properties import CostAwareStore

        store = CostAwareStore(args.cache_size)
    service = CompileService(
        store=store,
        process_backends=process_backends,
        max_workers=args.max_workers,
        min_workers=args.min_workers,
        autoscale=not args.no_autoscale,
        autoscale_interval=args.autoscale_interval,
        cache_size=args.cache_size,
    )

    class _ServerManager(ServiceManager):
        """Server-side manager bound to this process's service instance."""

    _ServerManager.register(
        "compile_service", callable=lambda: service, exposed=SERVICE_RPC_METHODS
    )
    manager = _ServerManager(address=(args.host, args.port), authkey=authkey)
    server = manager.get_server()
    host, port = server.address
    print(f"repro compile service listening on {host}:{port}", flush=True)
    print(f"authkey: {authkey.hex()}", flush=True)
    try:
        # serve_forever returns on KeyboardInterrupt/SystemExit.
        server.serve_forever()
    finally:
        print("draining compile service ...", flush=True)
        service.shutdown(drain=True)
        if cache_server is not None:
            cache_server.shutdown()
        print("compile service stopped", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
