"""The compile server: QoS request queue, autoscaled worker lanes, shared cache.

``compile_batch`` fans one sweep out over one pool and returns when the sweep
is done; a *service* accepts requests from many concurrent clients, keeps its
pools warm between them, and shares one result cache across everything it
compiles.  :class:`CompileService` is that subsystem:

* **Priority request queue + scheduler** — every ``submit()`` enqueues a
  :class:`CompileRequest` carrying a ``priority`` (higher runs first) and an
  optional ``deadline`` (seconds; a request that cannot start in time is
  expired into a structured :class:`DeadlineExceeded` failure result instead
  of compiling).  A scheduler thread pops requests in priority order, serves
  cache hits immediately, coalesces requests for work that is already in
  flight, and dispatches the rest to per-backend worker lanes.
* **Autoscaled per-backend lanes** — each backend gets its own lane: a
  priority queue drained by worker threads, so a slow backend (``best-of``,
  an RL predictor) cannot starve the cheap preset lanes and a high-priority
  request overtakes queued low-priority ones even inside a saturated lane.
  A supervisor watches queue depth and busy workers and grows/shrinks each
  lane between ``min_workers`` and ``max_workers``; scale events are
  surfaced in ``stats()["autoscaler"]``.  In-process backends compile on the
  worker thread; backends listed in ``process_backends`` are forwarded to a
  ``ProcessPoolExecutor`` that reuses the pickled-task machinery of
  ``compile_batch(executor="process")``.
* **Server-backed shared cache** — pass ``store=CacheServer().store()`` and
  the service cache lives behind a cache server: process-lane workers check
  and fill it from inside their worker processes, and anything else holding
  a client of the same server (another service, an ``AsyncVectorEnv``
  fleet) shares the entries too.  A cost-aware store
  (:class:`~repro.pipeline.CostAwareStore`) keeps expensive compilations
  resident and evicts cheap-to-recompute entries first.
* **Metrics** — ``stats()`` reports queue depth, in-flight count,
  hit/miss/eviction counters, coalescing, deadline expiries, per-lane worker
  and dispatch counts, autoscale events, and request latency, so benchmarks
  can measure the service instead of guessing.

The service runs in-process; ``python -m repro.service`` exposes one over a
``multiprocessing`` manager for remote :class:`~repro.service.ServiceClient`\\ s
with identical priority/deadline semantics.
"""

from __future__ import annotations

import itertools
import pickle
import threading
import queue as queue_module
from concurrent.futures import FIRST_COMPLETED, Future, InvalidStateError, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass, field, replace
from time import perf_counter
from typing import TYPE_CHECKING

from ..api.batch import CompilationCache, _compile_task, _failure_result, result_cache_key
from ..api.facade import apply_pass_overrides, resolve_backend
from ..api.registry import CompilerBackend
from ..api.result import CompilationResult
from ..devices.library import get_device
from ..obs import Span, activate, as_context
from ..profiling import profiler, profiling_enabled
from ..reward.functions import reward_function
from .sharding import ShardedCacheStore
from .store import SharedCacheStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..circuit.circuit import QuantumCircuit
    from ..devices.device import Device
    from ..pipeline.properties import CacheStore

__all__ = [
    "CompileRequest",
    "CompileService",
    "DeadlineExceeded",
    "SERVICE_RPC_METHODS",
    "TicketBook",
]

#: methods a served compile host (CompileService or ForwardingService)
#: exposes to remote clients through the manager
SERVICE_RPC_METHODS = (
    "submit_request",
    "wait_result",
    "poll_tickets",
    "stats",
    "ping",
    "health",
    "set_draining",
)


class TicketBook:
    """Ticket → future bookkeeping behind the remote RPC surface.

    Remote clients cannot hold a ``Future`` across the manager boundary, so
    ``submit_request`` hands them an opaque ticket instead; this class owns
    the mapping.  Shared by :class:`CompileService` and the forwarding
    front-service so both expose identical RPC semantics.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._futures: dict[str, Future] = {}

    def issue(self, future: Future) -> str:
        ticket = f"req-{next(self._ids)}"
        with self._lock:
            self._futures[ticket] = future
        return ticket

    def wait(self, ticket: str, timeout: float | None = None):
        """Block until the ticket's request resolves; the ticket is single-use."""
        with self._lock:
            future = self._futures.get(ticket)
        if future is None:
            raise KeyError(f"unknown or already-collected request ticket {ticket!r}")
        result = future.result(timeout)
        with self._lock:
            self._futures.pop(ticket, None)
        return result

    def poll(self, tickets, timeout: float = 0.5) -> dict:
        """One multiplexed wait over many tickets.

        Blocks up to ``timeout`` seconds for *any* of ``tickets`` to resolve
        and returns ``{ticket: result}`` for every one that did (empty dict
        on timeout).  Returned tickets are collected — single-use, like
        :meth:`wait`.  This is what lets a remote client resolve an
        arbitrary number of outstanding tickets through one waiter thread
        instead of parking one blocked ``wait_result`` call per ticket.
        """
        with self._lock:
            futures = {}
            unknown = []
            for ticket in tickets:
                future = self._futures.get(ticket)
                if future is None:
                    unknown.append(ticket)
                else:
                    futures[ticket] = future
        if unknown:
            raise KeyError(
                f"unknown or already-collected request tickets {sorted(unknown)!r}"
            )
        if not futures:
            return {}
        futures_wait(
            list(futures.values()), timeout=timeout, return_when=FIRST_COMPLETED
        )
        done = {}
        with self._lock:
            for ticket, future in futures.items():
                if future.done():
                    self._futures.pop(ticket, None)
                    done[ticket] = future.result(timeout=0)
        return done

#: scheduler-queue sentinel that stops the scheduler thread
_STOP = object()

#: lane-queue sentinel that retires exactly one lane worker
_STOP_WORKER = object()


class DeadlineExceeded(RuntimeError):
    """A request's deadline elapsed before a worker could start compiling it.

    Never raised out of ``Future.result()`` — the service resolves the future
    to a structured failure :class:`~repro.CompilationResult` whose ``error``
    carries this exception's text and whose
    ``metadata["deadline_exceeded"]`` is ``True``, matching how compilation
    failures are captured.
    """


def _deadline_result(request: "CompileRequest") -> CompilationResult:
    """The structured failure result for an expired request."""
    waited = perf_counter() - request.submitted_at
    result = _failure_result(
        request.circuit,
        request.backend.name,
        request.objective,
        DeadlineExceeded(
            f"deadline of {request.deadline:.3f}s expired after {waited:.3f}s "
            "before a worker picked the request up"
        ),
    )
    result.metadata = {**result.metadata, "deadline_exceeded": True}
    return result


def _service_compile_task(payload: tuple) -> CompilationResult:
    """One worker-side compilation, optionally against the shared store.

    Module-level so process lanes can pickle it.  When a shared store client
    rides along, the worker checks it before compiling and fills it after —
    that is what makes results flow *between worker processes* instead of
    only through the parent.

    ``trace_ctx`` and ``profile`` are the observability halves of the pickle
    boundary, both used only by process lanes (thread lanes run this function
    inline with the execute span already active on the calling thread, and
    share the parent's profile registry directly):

    * a non-``None`` ``trace_ctx`` makes the worker collect its pipeline
      spans under a shadow container and ship them home as plain dicts in
      ``metadata["_worker_spans"]`` — the parent grafts them under the real
      ``lane.execute`` span and strips the transient key;
    * ``profile=True`` makes the worker reset and enable its own (per-process)
      global registry around the task and ship the exact per-task counter
      delta back in ``metadata["_worker_profile"]``.  The reset matters with
      fork start methods, where the child inherits whatever counters the
      parent had at fork time; each worker process runs one task at a time,
      so clear-then-snapshot is an exact delta.

    Both transient keys are attached *after* any shared-store ``put``, so the
    cross-process cache never stores per-request observability payloads.
    """
    circuit, backend, device, objective, seed, key, store, trace_ctx, profile = payload
    registry = profiler()
    if profile:
        registry.clear()
        registry.enabled = True
    if store is not None:
        try:
            hit = store.get(key)
        except Exception:  # pragma: no cover - cache server gone; compile anyway
            hit = None
            store = None
        if hit is not None:
            result = hit.with_objective(objective)
            result.metadata = {**result.metadata, "cached": True}
            result.metadata.pop("trace", None)
            return result
    container = (
        Span("lane.worker", context=as_context(trace_ctx)) if trace_ctx is not None else None
    )
    with activate(container):
        result = _compile_task((circuit, backend, device, objective, seed))
    if store is not None and result.succeeded:
        try:
            store.put(key, result, result.wall_time or None)
        except Exception:  # pragma: no cover - cache server gone; result still good
            # A dead cache server must not fail a compilation that succeeded:
            # the fill is best-effort, exactly like the parent-side cache put.
            pass
    extras = {}
    if container is not None and container.children:
        extras["_worker_spans"] = [child.to_dict() for child in container.children]
    if profile:
        extras["_worker_profile"] = registry.snapshot()
    if extras:
        result.metadata = {**result.metadata, **extras}
    return result


@dataclass
class CompileRequest:
    """One queued compilation request (internal bookkeeping of the service)."""

    circuit: "QuantumCircuit"
    backend: CompilerBackend
    device: "Device | None"
    objective: str
    seed: int
    #: higher priorities are scheduled first; ties run in submission order
    priority: int = 0
    #: seconds the request may wait before it is expired (``None`` = forever)
    deadline: float | None = None
    future: Future = field(default_factory=Future)
    submitted_at: float = 0.0
    #: absolute ``perf_counter`` time at which the request expires
    deadline_at: float | None = None
    #: service-wide submission sequence number (priority-queue tie-breaker)
    seq: int = 0
    #: the priority the request is queued under (raised when a higher-priority
    #: request coalesces onto it)
    effective_priority: int = 0
    #: set once a worker has claimed the request (guards boost duplicates)
    started: bool = False
    #: the lane the request was dispatched to (set by the scheduler)
    lane: "object | None" = None
    #: the request's ``service.request`` span (``None`` when untraced)
    span: "Span | None" = None
    #: open ``queue.wait`` child span, finished when a worker claims the
    #: request (or when the request resolves without one — cache hit, expiry)
    queue_span: "Span | None" = None
    #: the ``lane.execute`` child span; coalesced followers graft the owner's
    #: instance into their own trees, sharing its span id
    execute_span: "Span | None" = None

    def key(self) -> tuple:
        """The shared-cache key (the one scheme shared with ``compile_batch``)."""
        device_name = self.device.name if self.device is not None else None
        return result_cache_key(self.circuit, self.backend, device_name, self.seed)

    def expired(self) -> bool:
        return self.deadline_at is not None and perf_counter() >= self.deadline_at

    def sort_key(self, seq: int | None = None) -> tuple:
        return (-self.effective_priority, self.seq if seq is None else seq)


class _Lane:
    """One backend's worker lane: a priority queue drained by its own threads.

    Workers pull ``(request, key)`` entries in priority order and compile
    in-thread (``kind="thread"``) or forward the payload to the shared
    ``ProcessPoolExecutor`` (``kind="process"``).  The lane scales between
    ``min_workers`` and ``max_workers``: :meth:`set_target` spawns workers
    immediately, while surplus workers retire themselves the next time they
    poll an empty queue.
    """

    #: seconds an idle worker waits for work before re-checking its target
    POLL_INTERVAL = 0.05

    def __init__(
        self,
        service: "CompileService",
        backend_name: str,
        kind: str,
        min_workers: int,
        max_workers: int,
    ):
        self.service = service
        self.backend_name = backend_name
        self.kind = kind
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.queue: queue_module.PriorityQueue = queue_module.PriorityQueue()
        self.dispatched = 0
        self.busy = 0
        self.idle_ticks = 0
        #: queue entries that are stale boost duplicates, not real work —
        #: subtracted from the reported queue depth so stats() and the
        #: autoscaler's backlog signal count each request once
        self.phantom = 0
        self._lock = threading.Lock()
        self._alive = 0
        self._target = 0
        self._stopping = False
        self._threads: list[threading.Thread] = []
        self._stop_seq = itertools.count(1)
        self.pool = (
            ProcessPoolExecutor(max_workers=max_workers) if kind == "process" else None
        )
        self.set_target(min_workers)

    # -- worker management -------------------------------------------------------------

    def set_target(self, workers: int) -> int:
        """Adjust the desired worker count (clamped to the lane's bounds).

        Scaling up spawns threads immediately; scaling down lets surplus
        workers retire on their next idle poll, so a busy lane never loses a
        worker mid-compilation.  Returns the clamped target.
        """
        with self._lock:
            workers = max(self.min_workers, min(self.max_workers, workers))
            self._target = workers
            # Retired workers leave their Thread objects behind: prune them so
            # up/down cycles on a long-lived service don't accumulate forever.
            self._threads = [t for t in self._threads if t.is_alive()]
            while self._alive < workers and not self._stopping:
                self._alive += 1
                thread = threading.Thread(
                    target=self._worker_loop,
                    name=f"svc-{self.backend_name}-{len(self._threads)}",
                    daemon=True,
                )
                self._threads.append(thread)
                thread.start()
            return workers

    def counts(self) -> tuple[int, int, int]:
        """``(alive, busy, target)`` under the lane lock."""
        with self._lock:
            return self._alive, self.busy, self._target

    def _worker_loop(self) -> None:
        while True:
            try:
                _key, item = self.queue.get(timeout=self.POLL_INTERVAL)
            except queue_module.Empty:
                with self._lock:
                    if self._stopping or self._alive > self._target:
                        self._alive -= 1
                        return
                continue
            if item is _STOP_WORKER:
                with self._lock:
                    self._alive -= 1
                return
            request, key = item
            with self._lock:
                self.busy += 1
            try:
                self.service._execute(self, request, key)
            except Exception as exc:  # noqa: BLE001 - a worker must never die
                # Backstop: _execute resolves every expected failure itself;
                # anything escaping here would otherwise kill the worker with
                # _alive still counting it and the future unresolved.
                if not request.future.done():
                    self.service._finish(
                        request,
                        _failure_result(
                            request.circuit, request.backend.name, request.objective, exc
                        ),
                    )
            finally:
                with self._lock:
                    self.busy -= 1

    # -- dispatch / teardown -----------------------------------------------------------

    def enqueue(self, request: CompileRequest, key: tuple, *, seq: int | None = None) -> None:
        self.queue.put((request.sort_key(seq), (request, key)))

    def stop(self, *, wait: bool) -> None:
        """Retire every worker (stop tokens jump the queue) and close the pool."""
        with self._lock:
            self._stopping = True
            alive = self._alive
        for _ in range(alive):
            # Highest possible priority: workers stop before touching any
            # request still queued behind the tokens.
            self.queue.put(((float("-inf"), -next(self._stop_seq)), _STOP_WORKER))
        for thread in self._threads:
            thread.join(timeout=10)
        if self.pool is not None:
            self.pool.shutdown(wait=wait)

    def drain_pending(self) -> list[tuple[CompileRequest, tuple]]:
        """Pop every request the retired workers left behind (stale boosts excluded)."""
        pending: list[tuple[CompileRequest, tuple]] = []
        while True:
            try:
                _key, item = self.queue.get_nowait()
            except queue_module.Empty:
                return pending
            if item is _STOP_WORKER:
                continue
            request, key = item
            if not request.started and not request.future.done():
                pending.append((request, key))

    def queue_depth(self) -> int:
        """Real pending requests: raw queue size minus stale boost duplicates."""
        with self._lock:
            return max(0, self.queue.qsize() - self.phantom)

    def stats(self) -> dict:
        alive, busy, target = self.counts()
        return {
            "kind": self.kind,
            "min_workers": self.min_workers,
            "max_workers": self.max_workers,
            "workers": alive,
            "target": target,
            "busy": busy,
            "queue_depth": self.queue_depth(),
            "dispatched": self.dispatched,
        }


class CompileService:
    """Concurrent compile server with QoS scheduling and a shared cache.

    Parameters
    ----------
    store:
        Optional :class:`~repro.pipeline.CacheStore` backing the service
        cache — pass :meth:`repro.service.CacheServer.store` to share entries
        (and counters) across process boundaries, or a
        :class:`~repro.pipeline.CostAwareStore` to evict cheap-to-recompute
        results first.  Defaults to a private in-process store.
    process_backends:
        Backend names whose lane forwards work to a ``ProcessPoolExecutor``
        (the backend must be picklable; validated when the lane is created).
        Everything else compiles on the lane's worker threads.
    min_workers / max_workers:
        Per-lane worker bounds.  Lanes start at ``min_workers``; the
        autoscaler grows them toward ``max_workers`` under queue pressure and
        shrinks them back when idle.  ``lane_workers`` overrides the *upper*
        bound per backend name.
    autoscale:
        Run the lane supervisor (default).  With ``autoscale=False`` every
        lane holds ``max_workers`` workers for its whole life (the pre-QoS
        behaviour).
    autoscale_interval:
        Seconds between supervisor sweeps.
    cache_size:
        Capacity of the service cache when ``store`` is not given.
    """

    #: idle supervisor sweeps before a lane is shrunk by one worker
    SCALE_DOWN_AFTER = 2
    #: bounded history of autoscale events surfaced in ``stats()``
    MAX_SCALE_EVENTS = 256

    def __init__(
        self,
        *,
        store: "CacheStore | None" = None,
        process_backends: tuple = (),
        max_workers: int = 2,
        min_workers: int = 1,
        lane_workers: dict | None = None,
        autoscale: bool = True,
        autoscale_interval: float = 0.25,
        cache_size: int = 4096,
        name: str = "compile-service",
    ):
        self.name = name
        self.cache = CompilationCache(cache_size, store=store)
        # Stores that survive the pickle boundary ride along to process-lane
        # workers so they check/fill the shared entries from inside the pool.
        self._shared_store = (
            store if isinstance(store, (SharedCacheStore, ShardedCacheStore)) else None
        )
        self._process_backends = frozenset(process_backends)
        self._max_workers = max(1, max_workers)
        self._min_workers = max(1, min(min_workers, self._max_workers))
        self._lane_workers = dict(lane_workers or {})
        self.autoscale = autoscale
        self.autoscale_interval = autoscale_interval
        self._queue: queue_module.PriorityQueue = queue_module.PriorityQueue()
        self._lanes: dict[str, _Lane] = {}
        self._inflight: dict[tuple, tuple[CompileRequest, list[CompileRequest]]] = {}
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._unfinished = 0
        self._closed = False
        self._metrics = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "cache_hits": 0,
            "coalesced": 0,
            "deadline_exceeded": 0,
            "scale_ups": 0,
            "scale_downs": 0,
            "latency_total": 0.0,
            "latency_max": 0.0,
        }
        self._scale_events: list[dict] = []
        self._observers: list = []
        self._draining = False
        self._seq = itertools.count()
        self._ticket_book = TicketBook()
        self._stop_event = threading.Event()
        self._scheduler = threading.Thread(
            target=self._scheduler_loop, name=f"{name}-scheduler", daemon=True
        )
        self._scheduler.start()
        self._supervisor: threading.Thread | None = None
        if autoscale:
            self._supervisor = threading.Thread(
                target=self._autoscale_loop, name=f"{name}-autoscaler", daemon=True
            )
            self._supervisor.start()

    # -- client API ------------------------------------------------------------------

    def submit(
        self,
        circuit: "QuantumCircuit",
        backend: "str | CompilerBackend" = "qiskit-o3",
        *,
        device: "Device | str | None" = None,
        objective: str = "fidelity",
        seed: int = 0,
        priority: int = 0,
        deadline: float | None = None,
        pass_overrides: dict | None = None,
        trace: "Span | object | dict | None" = None,
    ) -> Future:
        """Enqueue one compilation; the returned future resolves to its result.

        ``trace`` continues an existing trace: a :class:`~repro.obs.Span`,
        :class:`~repro.obs.SpanContext`, or ``{"trace_id", "span_id"}`` dict
        parents this request's ``service.request`` span there; the default
        ``None`` picks up the calling thread's active span, if any, so code
        already running under a span gets propagation for free.  With no
        context at all the request runs untraced (zero overhead).  The
        finished span tree — ``queue.wait``, ``lane.execute``, per-stage
        pipeline spans — comes back in ``result.metadata["trace"]``.

        ``priority`` (higher first) decides the order requests leave the
        queues; ``deadline`` (seconds from now) expires the request into a
        :class:`DeadlineExceeded` failure result if no worker could start it
        in time — ``deadline=0`` never reaches a worker at all.

        ``pass_overrides`` swaps stage slots of a preset backend's schedule by
        registered pass name (``{"routing": "tket-routing"}``); the derived
        backend carries its own cache token, so overridden results never
        alias base results in the shared cache or the coalescing map.

        Validation (unknown backend, unknown objective, negative deadline,
        bad pass override) happens here, in the caller's thread, so bad
        requests fail fast instead of poisoning the queue.  The future's
        result is always a :class:`~repro.CompilationResult` — compilation
        failures and deadline expiries are captured as ``succeeded=False``
        results, matching ``compile_batch``.
        """
        if deadline is not None:
            deadline = float(deadline)
            if deadline < 0:
                raise ValueError(f"deadline must be >= 0 seconds, got {deadline}")
        priority = int(priority)
        resolved = apply_pass_overrides(resolve_backend(backend), pass_overrides)
        reward_function(objective)  # fail fast on unknown objectives
        target = get_device(device) if isinstance(device, str) else device
        ctx = as_context(trace)
        now = perf_counter()
        request = CompileRequest(
            circuit=circuit,
            backend=resolved,
            device=target,
            objective=objective,
            seed=seed,
            priority=priority,
            deadline=deadline,
            effective_priority=priority,
            submitted_at=now,
            deadline_at=None if deadline is None else now + deadline,
            seq=next(self._seq),
        )
        if ctx is not None:
            request.span = Span(
                "service.request",
                context=ctx,
                attrs={
                    "backend": resolved.name,
                    "objective": objective,
                    "priority": priority,
                },
            )
            # Queue wait starts now; a lane worker closes it when it claims
            # the request (cache hits and expiries close it at _finish).
            request.queue_span = request.span.child("queue.wait")
        # The closed-check and the enqueue share one critical section:
        # shutdown() flips _closed under this lock *before* it drains the
        # queue, so a request that passed the check is guaranteed to be
        # visible to the drain loop — no future can slip through unresolved.
        with self._lock:
            if self._closed:
                raise RuntimeError(f"{self.name} is shut down")
            self._unfinished += 1
            self._metrics["submitted"] += 1
            self._queue.put((request.sort_key(), request))
        self._notify("queued", request)
        return request.future

    def submit_many(
        self,
        circuits,
        backend: "str | CompilerBackend" = "qiskit-o3",
        *,
        device: "Device | str | None" = None,
        objective: str = "fidelity",
        seed: int = 0,
        priority: int = 0,
        deadline: float | None = None,
        pass_overrides: dict | None = None,
        trace: "Span | object | dict | None" = None,
    ) -> list[Future]:
        """Enqueue one request per circuit; futures come back in input order.

        ``trace`` (or the caller's ambient span) parents every request of the
        batch, so one trace tree shows the whole sweep fanning out.
        """
        # Resolve the (possibly overridden) backend once for the whole batch;
        # likewise pin the trace context so every request shares one parent
        # even if the ambient span changes while the loop runs.
        resolved = apply_pass_overrides(resolve_backend(backend), pass_overrides)
        ctx = as_context(trace)
        return [
            self.submit(
                circuit,
                resolved,
                device=device,
                objective=objective,
                seed=seed,
                priority=priority,
                deadline=deadline,
                trace=ctx,
            )
            for circuit in circuits
        ]

    def add_observer(self, observer) -> None:
        """Subscribe to request lifecycle events.

        ``observer(event, request, result)`` is called with ``event`` one of
        ``"queued"`` (accepted into the scheduler queue), ``"started"`` (a
        lane worker claimed the request) and ``"finished"`` (the future
        resolved; ``result`` is the :class:`~repro.CompilationResult`,
        including structured failures and deadline expiries — ``result`` is
        ``None`` for the other events).  Cache hits and coalesced followers
        jump straight from ``"queued"`` to ``"finished"``.

        Callbacks run on scheduler/worker threads: they must be fast and must
        not call back into the service.  Exceptions are swallowed — a broken
        observer must not kill a worker.  This is the progress seam the HTTP
        gateway's server-sent-events endpoint is built on.
        """
        with self._lock:
            self._observers.append(observer)

    def remove_observer(self, observer) -> None:
        """Unsubscribe a previously added observer (no-op if absent)."""
        with self._lock:
            try:
                self._observers.remove(observer)
            except ValueError:
                pass

    def _notify(self, event: str, request: CompileRequest, result=None) -> None:
        with self._lock:
            observers = list(self._observers)
        for observer in observers:
            try:
                observer(event, request, result)
            except Exception:  # noqa: BLE001 - observers must never hurt the service
                pass

    def drain(self, timeout: float | None = None) -> bool:
        """Block until every submitted request has resolved.

        Returns ``False`` if ``timeout`` elapsed with work still pending.
        """
        deadline = None if timeout is None else perf_counter() + timeout
        with self._idle:
            while self._unfinished:
                remaining = None if deadline is None else deadline - perf_counter()
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(timeout=remaining)
        return True

    def shutdown(self, *, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the service: refuse new work, optionally finish pending work.

        With ``drain=True`` (the default) every already-accepted request is
        completed before the lanes are torn down; with ``drain=False``
        pending futures are failed as the lanes shut down.  Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if drain:
            self.drain(timeout=timeout)
        self._stop_event.set()
        self._queue.put(((float("-inf"), -1), _STOP))
        self._scheduler.join(timeout=10)
        if self._supervisor is not None:
            self._supervisor.join(timeout=5)
        with self._lock:
            lanes = list(self._lanes.values())
        for lane in lanes:
            lane.stop(wait=drain)
        # Fail any request that was still pending (drain=False teardown).
        with self._lock:
            pending = [owner for owner, _ in self._inflight.values()]
            followers = [req for _, reqs in self._inflight.values() for req in reqs]
            self._inflight.clear()
        while True:
            try:
                _key, item = self._queue.get_nowait()
            except queue_module.Empty:
                break
            if item is not _STOP:
                pending.append(item)
        for lane in lanes:
            pending.extend(request for request, _key in lane.drain_pending())
        for request in pending + followers:
            if not request.future.done():
                self._finish(
                    request,
                    _failure_result(
                        request.circuit,
                        request.backend.name,
                        request.objective,
                        RuntimeError("service shut down before request completed"),
                    ),
                )

    def __enter__(self) -> "CompileService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- RPC surface (used by remote ServiceClients via the manager) -------------------

    def submit_request(
        self,
        circuit: "QuantumCircuit",
        backend: str = "qiskit-o3",
        device: str | None = None,
        objective: str = "fidelity",
        seed: int = 0,
        priority: int = 0,
        deadline: float | None = None,
        pass_overrides: dict | None = None,
        trace: dict | None = None,
    ) -> str:
        """``submit()`` for remote callers: returns a ticket id instead of a future.

        Carries the full QoS surface — remote clients get identical
        priority/deadline and ``pass_overrides`` semantics to in-process
        ones.  ``trace`` is the wire form of a span context (``{"trace_id",
        "span_id"}`` dict): the server parents its ``service.request`` span
        there, exactly as the in-process path does, so a trace crossing the
        RPC boundary produces the same tree shape as one that never left the
        process.
        """
        future = self.submit(
            circuit,
            backend,
            device=device,
            objective=objective,
            seed=seed,
            priority=priority,
            deadline=deadline,
            pass_overrides=pass_overrides,
            trace=trace,
        )
        return self._ticket_book.issue(future)

    def wait_result(self, ticket: str, timeout: float | None = None) -> CompilationResult:
        """Block until the ticket's request resolves; the ticket is single-use."""
        return self._ticket_book.wait(ticket, timeout)

    def poll_tickets(self, tickets, timeout: float = 0.5) -> dict:
        """Resolve any finished tickets among ``tickets`` in one bounded wait.

        The multiplexing half of the RPC protocol: a remote client keeps one
        waiter thread that polls all its outstanding tickets here, so a
        completed high-priority request resolves immediately no matter how
        many slower tickets were submitted before it.
        """
        return self._ticket_book.poll(tickets, timeout)

    def ping(self) -> str:
        """Liveness probe for remote clients."""
        return self.name

    @property
    def draining(self) -> bool:
        """True once the service has been marked as draining for a restart."""
        return self._draining

    def set_draining(self, draining: bool = True) -> None:
        """Mark (or unmark) the service as draining.

        Purely advisory: the flag flips :meth:`health` to ``"draining"`` so
        load balancers and the HTTP gateway take the host out of rotation,
        but already-accepted work keeps running and ``submit`` still accepts
        requests (the layer in front is responsible for refusing new work).
        """
        self._draining = bool(draining)

    def health(self) -> dict:
        """Readiness snapshot for health endpoints and rolling restarts.

        ``status`` is ``"ok"`` while serving, ``"draining"`` once
        :meth:`set_draining` has been called, and ``"shutdown"`` after
        :meth:`shutdown`; ``ready`` collapses that to one load-balancer
        boolean.  Cheaper than :meth:`stats` — safe to poll aggressively.
        """
        with self._lock:
            closed = self._closed
            unfinished = self._unfinished
            in_flight = len(self._inflight)
        if closed:
            status = "shutdown"
        elif self._draining:
            status = "draining"
        else:
            status = "ok"
        return {
            "name": self.name,
            "status": status,
            "ready": status == "ok",
            "unfinished": unfinished,
            "in_flight": in_flight,
        }

    # -- metrics ---------------------------------------------------------------------

    def stats(self) -> dict:
        """Queue/cache/lane/latency/autoscaler counters for monitoring and benchmarks."""
        with self._lock:
            metrics = dict(self._metrics)
            in_flight = len(self._inflight)
            lanes = {name: lane.stats() for name, lane in self._lanes.items()}
            unfinished = self._unfinished
            scale_events = list(self._scale_events)
        completed = metrics["completed"]
        queue_depth = self._queue.qsize() + sum(
            lane["queue_depth"] for lane in lanes.values()
        )
        try:
            cache_stats = self.cache.stats()
        except Exception as exc:  # noqa: BLE001 - a dead cache server must not kill stats
            cache_stats = {"error": f"{type(exc).__name__}: {exc}"}
        return {
            "name": self.name,
            "submitted": metrics["submitted"],
            "completed": completed,
            "failed": metrics["failed"],
            "cache_hits": metrics["cache_hits"],
            "coalesced": metrics["coalesced"],
            "deadline_exceeded": metrics["deadline_exceeded"],
            "queue_depth": queue_depth,
            "in_flight": in_flight,
            "unfinished": unfinished,
            "latency": {
                "mean_seconds": metrics["latency_total"] / completed if completed else 0.0,
                "max_seconds": metrics["latency_max"],
            },
            "lanes": lanes,
            "autoscaler": {
                "enabled": self.autoscale,
                "interval_seconds": self.autoscale_interval,
                "scale_ups": metrics["scale_ups"],
                "scale_downs": metrics["scale_downs"],
                "events": scale_events,
            },
            "cache": cache_stats,
            "shared_cache": self._shared_store is not None,
            "profiling": self._profiling_stats(),
        }

    @staticmethod
    def _profiling_stats() -> dict:
        """Hot-path timing counters (empty unless profiling is enabled)."""
        from ..profiling import profiler

        registry = profiler()
        if not registry.enabled:
            return {"enabled": False, "counters": {}}
        return {"enabled": True, "counters": registry.snapshot()}

    # -- scheduler -------------------------------------------------------------------

    def _scheduler_loop(self) -> None:
        while True:
            _key, item = self._queue.get()
            if item is _STOP:
                break
            try:
                self._schedule(item)
            except Exception as exc:  # noqa: BLE001 - a bad request must not kill the loop
                self._finish(
                    item,
                    _failure_result(item.circuit, item.backend.name, item.objective, exc),
                )

    def _schedule(self, request: CompileRequest) -> None:
        # The cache is consulted before the deadline: serving a hit occupies
        # no worker, so even an already-expired request gets a free answer —
        # that is what makes ``deadline=0`` the cache-or-nothing idiom.
        key = request.key()
        try:
            hit = self.cache.get(key)
        except Exception:  # noqa: BLE001 - a dead cache server degrades to a miss
            hit = None
        if hit is not None:
            result = hit.with_objective(request.objective)
            result.metadata = {**result.metadata, "cached": True}
            # A cached result must answer with *this* request's trace, never
            # a stale tree the stored entry might somehow carry.
            result.metadata.pop("trace", None)
            if request.span is not None:
                request.span.event("cache.hit")
            with self._lock:
                self._metrics["cache_hits"] += 1
            self._finish(request, result)
            return
        if request.expired():
            # Expired with nothing cached (deadline=0 on a cold key lands
            # here): the request never reaches a lane, let alone a worker.
            self._expire(request)
            return
        with self._lock:
            inflight = self._inflight.get(key)
            if inflight is not None:
                # Identical work is already running: ride on its result
                # instead of occupying a second worker.  A higher-priority
                # follower must not wait at the owner's (lower) priority, so
                # the owner is re-queued at the follower's priority — the
                # ``started`` flag makes the original entry a no-op.
                owner, followers = inflight
                followers.append(request)
                self._metrics["coalesced"] += 1
                if request.span is not None:
                    # The follower's own request span survives; its execute
                    # time will be the owner's shared lane.execute span,
                    # grafted at completion.
                    request.span.set(coalesced=True)
                boost = (
                    request.priority > owner.effective_priority
                    and not owner.started
                    and owner.lane is not None
                )
                if boost:
                    owner.effective_priority = request.priority
                    # The original entry becomes a stale duplicate once the
                    # boosted copy (or it) is claimed: count one phantom.
                    with owner.lane._lock:
                        owner.lane.phantom += 1
                    owner.lane.enqueue(owner, key, seq=next(self._seq))
                return
            self._inflight[key] = (request, [])
        try:
            self._dispatch(request, key)
        except Exception:
            # Lane creation / submission failed: release the in-flight slot
            # (no follower can have attached yet — only this thread appends)
            # and let the scheduler loop turn the error into a failure result.
            with self._lock:
                self._inflight.pop(key, None)
            raise

    def _lane_for(self, backend: CompilerBackend) -> _Lane:
        # Lane creation happens on the scheduler thread *and* (for coalesced
        # retries) on lane worker threads, while stats() iterates the lane
        # map — every touch of self._lanes stays under the lock.
        with self._lock:
            lane = self._lanes.get(backend.name)
        if lane is not None:
            return lane
        kind = "process" if backend.name in self._process_backends else "thread"
        if kind == "process":
            try:
                pickle.dumps(backend)
            except Exception as exc:
                raise ValueError(
                    f"backend {backend.name!r} cannot be pickled for its "
                    f"process lane ({exc}); remove it from process_backends"
                ) from exc
        max_workers = self._lane_workers.get(backend.name, self._max_workers)
        min_workers = min(self._min_workers, max_workers)
        if not self.autoscale:
            min_workers = max_workers
        lane = _Lane(self, backend.name, kind, min_workers, max_workers)
        with self._lock:
            # Another thread may have created the lane meanwhile: keep the
            # registered one and drop ours.
            existing = self._lanes.get(backend.name)
            if existing is not None:
                drop, lane = lane, existing
            else:
                self._lanes[backend.name] = lane
                drop = None
        if drop is not None:
            drop.stop(wait=False)
        return lane

    def _dispatch(self, request: CompileRequest, key: tuple) -> None:
        lane = self._lane_for(request.backend)
        request.lane = lane
        with self._lock:
            lane.dispatched += 1
        lane.enqueue(request, key)

    # -- lane-worker side --------------------------------------------------------------

    def _execute(self, lane: _Lane, request: CompileRequest, key: tuple) -> None:
        """Run one claimed request on a lane worker thread."""
        with self._lock:
            stale = request.started or request.future.done()
            if not stale:
                request.started = True
        if stale:
            # A stale duplicate left behind by a priority boost: drop it and
            # settle the phantom count it was responsible for.
            with lane._lock:
                lane.phantom = max(0, lane.phantom - 1)
            return
        if request.expired():
            self._expire(request, key)
            return
        if request.queue_span is not None:
            # The request just left the queues: close the wait span here so
            # queue time and execute time partition the latency cleanly.
            request.queue_span.finish()
        execute_span = None
        if request.span is not None:
            execute_span = request.span.child(
                "lane.execute", attrs={"lane": lane.backend_name, "kind": lane.kind}
            )
            request.execute_span = execute_span
        self._notify("started", request)
        store = self._shared_store if lane.kind == "process" else None
        # Process lanes carry the trace as a picklable context and profile as
        # a flag (the worker process has its own registry); thread lanes get
        # both for free — the execute span is activated on this thread and
        # the global registry is shared in-process.
        trace_ctx = (
            execute_span.context()
            if execute_span is not None and lane.kind == "process"
            else None
        )
        payload = (
            request.circuit,
            request.backend,
            request.device,
            request.objective,
            request.seed,
            key,
            store,
            trace_ctx,
            lane.kind == "process" and profiling_enabled(),
        )
        try:
            if lane.pool is not None:
                result = lane.pool.submit(_service_compile_task, payload).result()
            else:
                with activate(execute_span):
                    result = _service_compile_task(payload)
        except Exception as exc:  # noqa: BLE001 - pool-level failure (e.g. broken pool)
            result = _failure_result(request.circuit, request.backend.name, request.objective, exc)
        if lane.kind == "process":
            # Strip the worker's transient observability payloads before the
            # result can reach the parent cache or any caller.
            worker_spans = result.metadata.pop("_worker_spans", None)
            worker_profile = result.metadata.pop("_worker_profile", None)
            if worker_spans and execute_span is not None:
                for subtree in worker_spans:
                    execute_span.add(subtree)
            if worker_profile:
                profiler().merge(worker_profile)
        if execute_span is not None:
            execute_span.finish(status="ok" if result.succeeded else "error")
        self._complete(request, key, result)

    def _expire(self, request: CompileRequest, key: tuple | None = None) -> None:
        """Resolve an expired request (and re-route any coalesced followers)."""
        if request.span is not None:
            request.span.event("deadline.expired")
        with self._lock:
            self._metrics["deadline_exceeded"] += 1
        followers = self._release_inflight(request, key) if key is not None else []
        self._finish(request, _deadline_result(request))
        # Followers carried their own deadlines: each gets an independent
        # attempt (or its own expiry) — an expired owner must not take its
        # coalesced riders down with it.
        for follower in followers:
            self._redispatch(follower, key)

    def _release_inflight(self, request: CompileRequest, key: tuple) -> list[CompileRequest]:
        """Pop ``key``'s in-flight entry — only if ``request`` still owns it.

        A redispatched follower finishes with no entry of its own, and a
        *newer* owner may have registered the same key meanwhile: popping
        unconditionally would orphan that owner's followers and break
        coalescing for it.
        """
        with self._lock:
            entry = self._inflight.get(key)
            if entry is not None and entry[0] is request:
                del self._inflight[key]
                return entry[1]
        return []

    def _complete(self, request: CompileRequest, key: tuple, result: CompilationResult) -> None:
        if result.succeeded:
            try:
                self.cache.put(key, result, result.wall_time or None)
            except Exception:  # noqa: BLE001 - cache is best-effort; the result is not
                pass
        followers = self._release_inflight(request, key)
        self._finish(request, result)
        for follower in followers:
            if result.succeeded:
                shared = result.with_objective(follower.objective)
                shared.metadata = {**shared.metadata, "cached": True}
                if follower.span is not None and request.execute_span is not None:
                    # Coalesced requests share the owner's lane.execute span
                    # (same span id in every tree) while keeping their own
                    # request and queue.wait spans — the trace shows both
                    # *that* the work ran once and *who* waited on it.
                    follower.span.add(request.execute_span)
                self._finish(follower, shared)
            else:
                # The owner failed (failures are never cached or shared):
                # give each coalesced request its own attempt, matching
                # compile_batch's duplicate handling.  No in-flight entry is
                # registered, so the retries run independently.
                self._redispatch(follower, key)

    def _redispatch(self, follower: CompileRequest, key: tuple | None) -> None:
        """Re-route a coalesced follower after its owner failed or expired.

        Runs on lane worker threads, where an escaping exception would kill
        the worker and leave the follower's future unresolved — dispatch
        failures become failure results here instead.
        """
        if follower.expired():
            with self._lock:
                self._metrics["deadline_exceeded"] += 1
            self._finish(follower, _deadline_result(follower))
            return
        try:
            self._dispatch(follower, key if key is not None else follower.key())
        except Exception as exc:  # noqa: BLE001 - must resolve the future
            self._finish(
                follower,
                _failure_result(
                    follower.circuit, follower.backend.name, follower.objective, exc
                ),
            )

    def _finish(self, request: CompileRequest, result: CompilationResult) -> None:
        if request.span is not None:
            if request.queue_span is not None:
                # Still open on paths that never reached a worker (cache hit,
                # expiry, shutdown); finish() is idempotent for the rest.
                request.queue_span.finish()
            request.span.finish(status="ok" if result.succeeded else "error")
            # Annotate a copy: ``result`` may be (or later become) the object
            # held by the result cache, and a cached entry must never carry
            # one request's trace into another request's answer.
            result = replace(
                result, metadata={**result.metadata, "trace": request.span.to_dict()}
            )
        try:
            request.future.set_result(result)
        except InvalidStateError:  # already failed by a drain=False shutdown
            return
        latency = perf_counter() - request.submitted_at if request.submitted_at else 0.0
        with self._lock:
            self._metrics["completed"] += 1
            if not result.succeeded:
                self._metrics["failed"] += 1
            self._metrics["latency_total"] += latency
            self._metrics["latency_max"] = max(self._metrics["latency_max"], latency)
            self._unfinished -= 1
            self._idle.notify_all()
        self._notify("finished", request, result)

    # -- autoscaler --------------------------------------------------------------------

    def _autoscale_loop(self) -> None:
        while not self._stop_event.wait(self.autoscale_interval):
            try:
                self.autoscale_once()
            except Exception:  # pragma: no cover - supervisor must never die
                pass

    def autoscale_once(self) -> list[dict]:
        """One supervisor sweep over every lane; returns the emitted scale events.

        Grows a lane when requests are queued and capacity remains; shrinks it
        after :data:`SCALE_DOWN_AFTER` consecutive idle sweeps.  Public so
        operators (and the stress suite) can force a deterministic sweep.
        """
        events: list[dict] = []
        with self._lock:
            lanes = list(self._lanes.values())
        now = perf_counter()
        for lane in lanes:
            depth = lane.queue_depth()
            alive, busy, target = lane.counts()
            if depth > 0 and target < lane.max_workers:
                lane.idle_ticks = 0
                # Grow proportionally to the backlog, one worker minimum.
                new = lane.set_target(target + max(1, depth // 4))
                if new > target:
                    events.append(
                        {
                            "lane": lane.backend_name,
                            "event": "scale_up",
                            "from_workers": target,
                            "to_workers": new,
                            "queue_depth": depth,
                            "time": now,
                        }
                    )
            elif depth == 0 and busy == 0 and target > lane.min_workers:
                lane.idle_ticks += 1
                if lane.idle_ticks >= self.SCALE_DOWN_AFTER:
                    lane.idle_ticks = 0
                    new = lane.set_target(target - 1)
                    if new < target:
                        events.append(
                            {
                                "lane": lane.backend_name,
                                "event": "scale_down",
                                "from_workers": target,
                                "to_workers": new,
                                "queue_depth": depth,
                                "time": now,
                            }
                        )
            else:
                lane.idle_ticks = 0
        if events:
            with self._lock:
                for event in events:
                    self._metrics[
                        "scale_ups" if event["event"] == "scale_up" else "scale_downs"
                    ] += 1
                self._scale_events.extend(events)
                del self._scale_events[: -self.MAX_SCALE_EVENTS]
        return events

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"CompileService({self.name!r}, lanes={sorted(self._lanes)}, {state})"
