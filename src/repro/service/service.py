"""The compile server: request queue, per-backend worker pools, shared cache.

``compile_batch`` fans one sweep out over one pool and returns when the sweep
is done; a *service* accepts requests from many concurrent clients, keeps its
pools warm between them, and shares one result cache across everything it
compiles.  :class:`CompileService` is that subsystem:

* **Request queue + scheduler** — every ``submit()`` enqueues a
  :class:`CompileRequest`; a scheduler thread pops requests, serves cache
  hits immediately, coalesces requests for work that is already in flight,
  and dispatches the rest to per-backend worker pools.
* **Per-backend lanes** — each backend gets its own worker pool, so a slow
  backend (``best-of``, an RL predictor) cannot starve the cheap preset
  lanes.  In-process backends run on a ``ThreadPoolExecutor``; backends
  listed in ``process_backends`` run on a ``ProcessPoolExecutor`` lane that
  reuses the pickled-task machinery of ``compile_batch(executor="process")``.
* **Server-backed shared cache** — pass ``store=CacheServer().store()`` and
  the service cache lives behind a cache server: process-lane workers check
  and fill it from inside their worker processes, and anything else holding
  a client of the same server (another service, an ``AsyncVectorEnv``
  fleet) shares the entries too.
* **Metrics** — ``stats()`` reports queue depth, in-flight count,
  hit/miss/eviction counters, coalescing, per-lane dispatch counts, and
  request latency, so benchmarks can measure the service instead of guessing.

The service runs in-process; ``python -m repro.service`` exposes one over a
``multiprocessing`` manager for remote :class:`~repro.service.ServiceClient`\\ s.
"""

from __future__ import annotations

import itertools
import pickle
import threading
import queue as queue_module
from concurrent.futures import Future, InvalidStateError, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING

from ..api.batch import CompilationCache, _compile_task, _failure_result, result_cache_key
from ..api.facade import resolve_backend
from ..api.registry import CompilerBackend
from ..api.result import CompilationResult
from ..devices.library import get_device
from ..reward.functions import reward_function
from .store import SharedCacheStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..circuit.circuit import QuantumCircuit
    from ..devices.device import Device
    from ..pipeline.properties import CacheStore

__all__ = ["CompileRequest", "CompileService", "SERVICE_RPC_METHODS"]

#: CompileService methods exposed to remote clients through the manager
SERVICE_RPC_METHODS = ("submit_request", "wait_result", "stats", "ping")

#: scheduler-queue sentinel that stops the scheduler thread
_STOP = object()


def _service_compile_task(payload: tuple) -> CompilationResult:
    """One worker-side compilation, optionally against the shared store.

    Module-level so process lanes can pickle it.  When a shared store client
    rides along, the worker checks it before compiling and fills it after —
    that is what makes results flow *between worker processes* instead of
    only through the parent.
    """
    circuit, backend, device, objective, seed, key, store = payload
    if store is not None:
        try:
            hit = store.get(key)
        except Exception:  # pragma: no cover - cache server gone; compile anyway
            hit = None
            store = None
        if hit is not None:
            result = hit.with_objective(objective)
            result.metadata = {**result.metadata, "cached": True}
            return result
    result = _compile_task((circuit, backend, device, objective, seed))
    if store is not None and result.succeeded:
        store.put(key, result)
    return result


@dataclass
class CompileRequest:
    """One queued compilation request (internal bookkeeping of the service)."""

    circuit: "QuantumCircuit"
    backend: CompilerBackend
    device: "Device | None"
    objective: str
    seed: int
    future: Future = field(default_factory=Future)
    submitted_at: float = 0.0

    def key(self) -> tuple:
        """The shared-cache key (the one scheme shared with ``compile_batch``)."""
        device_name = self.device.name if self.device is not None else None
        return result_cache_key(self.circuit, self.backend, device_name, self.seed)


class _Lane:
    """One backend's worker pool plus its dispatch counter."""

    def __init__(self, backend_name: str, kind: str, max_workers: int):
        self.backend_name = backend_name
        self.kind = kind
        self.max_workers = max_workers
        self.dispatched = 0
        if kind == "process":
            self.executor: "ThreadPoolExecutor | ProcessPoolExecutor" = ProcessPoolExecutor(
                max_workers=max_workers
            )
        else:
            self.executor = ThreadPoolExecutor(
                max_workers=max_workers, thread_name_prefix=f"svc-{backend_name}"
            )

    def stats(self) -> dict:
        return {
            "kind": self.kind,
            "max_workers": self.max_workers,
            "dispatched": self.dispatched,
        }


class CompileService:
    """Concurrent compile server with a shared cache and per-backend pools.

    Parameters
    ----------
    store:
        Optional :class:`~repro.pipeline.CacheStore` backing the service
        cache — pass :meth:`repro.service.CacheServer.store` to share entries
        (and counters) across process boundaries.  Defaults to a private
        in-process store.
    process_backends:
        Backend names whose lane runs on a ``ProcessPoolExecutor`` (the
        backend must be picklable; validated when the lane is created).
        Everything else runs on a per-backend thread pool.
    max_workers:
        Worker count per lane (default 2).  ``lane_workers`` overrides it
        per backend name.
    cache_size:
        Capacity of the service cache when ``store`` is not given.
    """

    def __init__(
        self,
        *,
        store: "CacheStore | None" = None,
        process_backends: tuple = (),
        max_workers: int = 2,
        lane_workers: dict | None = None,
        cache_size: int = 4096,
        name: str = "compile-service",
    ):
        self.name = name
        self.cache = CompilationCache(cache_size, store=store)
        self._shared_store = store if isinstance(store, SharedCacheStore) else None
        self._process_backends = frozenset(process_backends)
        self._max_workers = max(1, max_workers)
        self._lane_workers = dict(lane_workers or {})
        self._queue: queue_module.Queue = queue_module.Queue()
        self._lanes: dict[str, _Lane] = {}
        self._inflight: dict[tuple, tuple[CompileRequest, list[CompileRequest]]] = {}
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._unfinished = 0
        self._closed = False
        self._metrics = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "cache_hits": 0,
            "coalesced": 0,
            "latency_total": 0.0,
            "latency_max": 0.0,
        }
        self._request_ids = itertools.count(1)
        self._tickets: dict[str, Future] = {}
        self._scheduler = threading.Thread(
            target=self._scheduler_loop, name=f"{name}-scheduler", daemon=True
        )
        self._scheduler.start()

    # -- client API ------------------------------------------------------------------

    def submit(
        self,
        circuit: "QuantumCircuit",
        backend: "str | CompilerBackend" = "qiskit-o3",
        *,
        device: "Device | str | None" = None,
        objective: str = "fidelity",
        seed: int = 0,
    ) -> Future:
        """Enqueue one compilation; the returned future resolves to its result.

        Validation (unknown backend, unknown objective) happens here, in the
        caller's thread, so bad requests fail fast instead of poisoning the
        queue.  The future's result is always a
        :class:`~repro.CompilationResult` — compilation failures are captured
        as ``succeeded=False`` results, matching ``compile_batch``.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError(f"{self.name} is shut down")
            self._unfinished += 1
            self._metrics["submitted"] += 1
        try:
            resolved = resolve_backend(backend)
            reward_function(objective)  # fail fast on unknown objectives
            target = get_device(device) if isinstance(device, str) else device
        except Exception:
            with self._lock:
                self._unfinished -= 1
                self._metrics["submitted"] -= 1
                self._idle.notify_all()
            raise
        request = CompileRequest(
            circuit=circuit,
            backend=resolved,
            device=target,
            objective=objective,
            seed=seed,
            submitted_at=perf_counter(),
        )
        self._queue.put(request)
        return request.future

    def submit_many(
        self,
        circuits,
        backend: "str | CompilerBackend" = "qiskit-o3",
        *,
        device: "Device | str | None" = None,
        objective: str = "fidelity",
        seed: int = 0,
    ) -> list[Future]:
        """Enqueue one request per circuit; futures come back in input order."""
        return [
            self.submit(circuit, backend, device=device, objective=objective, seed=seed)
            for circuit in circuits
        ]

    def drain(self, timeout: float | None = None) -> bool:
        """Block until every submitted request has resolved.

        Returns ``False`` if ``timeout`` elapsed with work still pending.
        """
        deadline = None if timeout is None else perf_counter() + timeout
        with self._idle:
            while self._unfinished:
                remaining = None if deadline is None else deadline - perf_counter()
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(timeout=remaining)
        return True

    def shutdown(self, *, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the service: refuse new work, optionally finish pending work.

        With ``drain=True`` (the default) every already-accepted request is
        completed before the pools are torn down; with ``drain=False``
        pending futures are cancelled/failed as the pools shut down.
        Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if drain:
            self.drain(timeout=timeout)
        self._queue.put(_STOP)
        self._scheduler.join(timeout=10)
        for lane in self._lanes.values():
            lane.executor.shutdown(wait=drain)
        # Fail any request that was still pending (drain=False teardown).
        with self._lock:
            pending = [owner for owner, _ in self._inflight.values()]
            followers = [req for _, reqs in self._inflight.values() for req in reqs]
            self._inflight.clear()
        while True:
            try:
                item = self._queue.get_nowait()
            except queue_module.Empty:
                break
            if item is not _STOP:
                pending.append(item)
        for request in pending + followers:
            if not request.future.done():
                self._finish(
                    request,
                    _failure_result(
                        request.circuit,
                        request.backend.name,
                        request.objective,
                        RuntimeError("service shut down before request completed"),
                    ),
                )

    def __enter__(self) -> "CompileService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- RPC surface (used by remote ServiceClients via the manager) -------------------

    def submit_request(
        self,
        circuit: "QuantumCircuit",
        backend: str = "qiskit-o3",
        device: str | None = None,
        objective: str = "fidelity",
        seed: int = 0,
    ) -> str:
        """``submit()`` for remote callers: returns a ticket id instead of a future."""
        future = self.submit(circuit, backend, device=device, objective=objective, seed=seed)
        ticket = f"req-{next(self._request_ids)}"
        with self._lock:
            self._tickets[ticket] = future
        return ticket

    def wait_result(self, ticket: str, timeout: float | None = None) -> CompilationResult:
        """Block until the ticket's request resolves; the ticket is single-use."""
        with self._lock:
            future = self._tickets.get(ticket)
        if future is None:
            raise KeyError(f"unknown or already-collected request ticket {ticket!r}")
        result = future.result(timeout)
        with self._lock:
            self._tickets.pop(ticket, None)
        return result

    def ping(self) -> str:
        """Liveness probe for remote clients."""
        return self.name

    # -- metrics ---------------------------------------------------------------------

    def stats(self) -> dict:
        """Queue/cache/lane/latency counters for monitoring and benchmarks."""
        with self._lock:
            metrics = dict(self._metrics)
            in_flight = len(self._inflight)
            lanes = {name: lane.stats() for name, lane in self._lanes.items()}
            unfinished = self._unfinished
        completed = metrics["completed"]
        return {
            "name": self.name,
            "submitted": metrics["submitted"],
            "completed": completed,
            "failed": metrics["failed"],
            "cache_hits": metrics["cache_hits"],
            "coalesced": metrics["coalesced"],
            "queue_depth": self._queue.qsize(),
            "in_flight": in_flight,
            "unfinished": unfinished,
            "latency": {
                "mean_seconds": metrics["latency_total"] / completed if completed else 0.0,
                "max_seconds": metrics["latency_max"],
            },
            "lanes": lanes,
            "cache": self.cache.stats(),
            "shared_cache": self._shared_store is not None,
        }

    # -- scheduler -------------------------------------------------------------------

    def _scheduler_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                break
            try:
                self._schedule(item)
            except Exception as exc:  # noqa: BLE001 - a bad request must not kill the loop
                self._finish(
                    item,
                    _failure_result(item.circuit, item.backend.name, item.objective, exc),
                )

    def _schedule(self, request: CompileRequest) -> None:
        key = request.key()
        hit = self.cache.get(key)
        if hit is not None:
            result = hit.with_objective(request.objective)
            result.metadata = {**result.metadata, "cached": True}
            with self._lock:
                self._metrics["cache_hits"] += 1
            self._finish(request, result)
            return
        with self._lock:
            inflight = self._inflight.get(key)
            if inflight is not None:
                # Identical work is already running: ride on its result
                # instead of occupying a second worker.
                inflight[1].append(request)
                self._metrics["coalesced"] += 1
                return
            self._inflight[key] = (request, [])
        try:
            self._dispatch(request, key)
        except Exception:
            # Lane creation / submission failed: release the in-flight slot
            # (no follower can have attached yet — only this thread appends)
            # and let the scheduler loop turn the error into a failure result.
            with self._lock:
                self._inflight.pop(key, None)
            raise

    def _lane_for(self, backend: CompilerBackend) -> _Lane:
        # Lane creation happens on the scheduler thread *and* (for coalesced
        # retries) on executor callback threads, while stats() iterates the
        # lane map — every touch of self._lanes stays under the lock.
        with self._lock:
            lane = self._lanes.get(backend.name)
        if lane is not None:
            return lane
        kind = "process" if backend.name in self._process_backends else "thread"
        if kind == "process":
            try:
                pickle.dumps(backend)
            except Exception as exc:
                raise ValueError(
                    f"backend {backend.name!r} cannot be pickled for its "
                    f"process lane ({exc}); remove it from process_backends"
                ) from exc
        workers = self._lane_workers.get(backend.name, self._max_workers)
        lane = _Lane(backend.name, kind, workers)
        with self._lock:
            # Another thread may have created the lane meanwhile: keep the
            # registered one and drop ours.
            existing = self._lanes.get(backend.name)
            if existing is not None:
                drop, lane = lane, existing
            else:
                self._lanes[backend.name] = lane
                drop = None
        if drop is not None:
            drop.executor.shutdown(wait=False)
        return lane

    def _dispatch(self, request: CompileRequest, key: tuple) -> None:
        lane = self._lane_for(request.backend)
        store = self._shared_store if lane.kind == "process" else None
        payload = (
            request.circuit,
            request.backend,
            request.device,
            request.objective,
            request.seed,
            key,
            store,
        )
        with self._lock:
            lane.dispatched += 1
        worker_future = lane.executor.submit(_service_compile_task, payload)
        worker_future.add_done_callback(lambda fut: self._on_computed(request, key, fut))

    def _on_computed(self, request: CompileRequest, key: tuple, worker_future: Future) -> None:
        try:
            result = worker_future.result()
        except Exception as exc:  # noqa: BLE001 - pool-level failure (e.g. broken pool)
            result = _failure_result(request.circuit, request.backend.name, request.objective, exc)
        if result.succeeded:
            self.cache.put(key, result)
        with self._lock:
            _owner, followers = self._inflight.pop(key, (request, []))
        self._finish(request, result)
        for follower in followers:
            if result.succeeded:
                shared = result.with_objective(follower.objective)
                shared.metadata = {**shared.metadata, "cached": True}
                self._finish(follower, shared)
            else:
                # The owner failed (failures are never cached or shared):
                # give each coalesced request its own attempt, matching
                # compile_batch's duplicate handling.  No in-flight entry is
                # registered, so the retries run independently.  This runs in
                # an executor callback, where an escaping exception would be
                # swallowed and the follower's future never resolved — e.g. a
                # broken process pool failing the re-submit — so dispatch
                # failures become failure results here.
                try:
                    self._dispatch(follower, key)
                except Exception as exc:  # noqa: BLE001 - must resolve the future
                    self._finish(
                        follower,
                        _failure_result(
                            follower.circuit, follower.backend.name, follower.objective, exc
                        ),
                    )

    def _finish(self, request: CompileRequest, result: CompilationResult) -> None:
        try:
            request.future.set_result(result)
        except InvalidStateError:  # already failed by a drain=False shutdown
            return
        latency = perf_counter() - request.submitted_at if request.submitted_at else 0.0
        with self._lock:
            self._metrics["completed"] += 1
            if not result.succeeded:
                self._metrics["failed"] += 1
            self._metrics["latency_total"] += latency
            self._metrics["latency_max"] = max(self._metrics["latency_max"], latency)
            self._unfinished -= 1
            self._idle.notify_all()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"CompileService({self.name!r}, lanes={sorted(self._lanes)}, {state})"
