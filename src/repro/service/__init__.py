"""Compile-service subsystem: serve many clients against one shared cache.

This package turns the one-shot compilation facilities (``repro.compile``,
``repro.compile_batch``) into a long-lived server:

* :class:`CompileService` — QoS request queue (per-request ``priority`` and
  ``deadline``; expired requests resolve to structured
  :class:`DeadlineExceeded` failure results without occupying a worker),
  scheduler, autoscaled per-backend worker lanes (thread lanes for
  in-process backends, process lanes reusing the batch executor's
  pickled-task machinery), request coalescing, and
  hit/miss/queue-depth/latency/autoscale metrics via
  :meth:`CompileService.stats`.
* :class:`CacheServer` / :class:`SharedCacheStore` — a cache server process
  plus picklable store clients, so pool workers, other services and
  ``AsyncVectorEnv`` members share ``CompilationCache`` / ``TransformCache``
  entries across process boundaries.
* :class:`ServiceClient` — the caller API (``submit`` → future,
  ``submit_many``, ``result``, ``stats``), identical against an in-process
  service or a ``python -m repro.service`` server.
* The multi-node fabric: :class:`ShardedCacheStore` (consistent-hash
  sharding of the shared cache over several TCP cache servers, with
  bounded-timeout graceful degradation), :class:`ForwardingService` (a
  front-router spilling overload to sibling hosts with priority, deadline
  and trace context intact), and :func:`rolling_restart` (drain → restart →
  re-admit each host in turn with zero lost accepted requests).

Quickstart::

    from repro.service import CompileService, ServiceClient

    with CompileService() as service:
        client = ServiceClient(service)
        futures = client.submit_many(circuits, backend="qiskit-o3")
        results = [f.result() for f in futures]
        print(service.stats()["cache"])
"""

from __future__ import annotations

from .client import ServiceClient, ServiceManager, ServiceTimeout
from .forwarding import ForwardingService
from .rolling import HostRestart, RollingRestartError, rolling_restart
from .service import CompileRequest, CompileService, DeadlineExceeded
from .sharding import ShardedCacheStore, stable_key_hash
from .store import CacheServer, SharedCacheStore

__all__ = [
    "CacheServer",
    "CompileRequest",
    "CompileService",
    "DeadlineExceeded",
    "ForwardingService",
    "HostRestart",
    "RollingRestartError",
    "ServiceClient",
    "ServiceManager",
    "ServiceTimeout",
    "ShardedCacheStore",
    "SharedCacheStore",
    "rolling_restart",
    "stable_key_hash",
]
