"""Rolling-restart orchestration over ``set_draining()`` / ``health()``.

The primitives have existed since the gateway PR — any compile host can be
flagged as draining (load balancers and :class:`ForwardingService` routers
stop sending it new work) and polled for quiescence through ``health()``.
This module sequences them into a zero-loss rolling restart:

for each host, one at a time:
  1. **drain** — ``set_draining(True)``; new work flows to the other hosts.
  2. **quiesce** — poll ``health()`` until ``unfinished == 0`` (bounded by
     ``drain_timeout``); every request the host had already accepted
     completes normally.
  3. **restart** — the caller-supplied ``restart(name, handle)`` callback
     does the actual process bounce and returns the handle for the new
     incarnation (often a fresh :class:`~repro.service.ServiceClient`).
  4. **re-admit** — poll the new handle until ``health()`` reports ready,
     then move to the next host.

Handles only need ``set_draining`` / ``health`` (and whatever ``restart``
needs), so the same driver runs against in-process
:class:`~repro.service.CompileService` objects in tests and against remote
:class:`~repro.service.ServiceClient` connections from
``tools/rolling_restart.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter, sleep
from typing import Any, Callable

__all__ = ["HostRestart", "RollingRestartError", "rolling_restart"]


class RollingRestartError(RuntimeError):
    """A host failed to drain or to come back ready within its timeout."""

    def __init__(self, host: str, phase: str, waited: float, detail: str = ""):
        self.host = host
        self.phase = phase
        self.waited = waited
        message = f"host {host!r} did not finish {phase} within {waited:.1f}s"
        if detail:
            message += f" ({detail})"
        super().__init__(message)


@dataclass
class HostRestart:
    """What happened to one host during :func:`rolling_restart`."""

    host: str
    drain_seconds: float = 0.0
    restart_seconds: float = 0.0
    ready_seconds: float = 0.0
    unfinished_at_drain: int = 0
    events: list[str] = field(default_factory=list)


def _wait_until(
    predicate: Callable[[], bool], timeout: float, poll_interval: float
) -> float | None:
    """Poll ``predicate`` until true; returns elapsed seconds, ``None`` on timeout."""
    start = perf_counter()
    while True:
        try:
            if predicate():
                return perf_counter() - start
        except Exception:  # noqa: BLE001 - a restarting host may refuse connections
            pass
        if perf_counter() - start >= timeout:
            return None
        sleep(poll_interval)


def rolling_restart(
    hosts: "dict[str, Any]",
    restart: Callable[[str, Any], Any],
    *,
    drain_timeout: float = 30.0,
    ready_timeout: float = 30.0,
    poll_interval: float = 0.05,
    on_event: Callable[[str], None] | None = None,
) -> list[HostRestart]:
    """Drain, restart, and re-admit every host in sequence; zero lost requests.

    Parameters
    ----------
    hosts:
        ``{name: handle}`` in restart order.  Handles need ``set_draining``
        and ``health`` (a :class:`CompileService`, :class:`ServiceClient`, or
        :class:`ForwardingService` all qualify).
    restart:
        ``restart(name, handle) -> new_handle`` performs the actual bounce.
        It runs only after the host has fully quiesced, so it may terminate
        the process ungracefully without losing accepted work.  Returning the
        old handle (e.g. after an in-place config reload) is fine.
    drain_timeout / ready_timeout:
        Bounds for the quiesce wait and the post-restart readiness wait;
        exceeding either raises :class:`RollingRestartError` with the
        remaining hosts untouched (and still serving).

    Returns one :class:`HostRestart` report per host, in restart order.
    """

    def emit(report: HostRestart, message: str) -> None:
        report.events.append(message)
        if on_event is not None:
            on_event(f"[{report.host}] {message}")

    reports = []
    for name, handle in hosts.items():
        report = HostRestart(host=name)
        report.unfinished_at_drain = int(handle.health().get("unfinished", 0))
        handle.set_draining(True)
        emit(report, f"draining ({report.unfinished_at_drain} unfinished)")
        try:
            waited = _wait_until(
                lambda: int(handle.health().get("unfinished", 0)) == 0,
                drain_timeout,
                poll_interval,
            )
            if waited is None:
                raise RollingRestartError(
                    name,
                    "drain",
                    drain_timeout,
                    f"{handle.health().get('unfinished')} requests still unfinished",
                )
            report.drain_seconds = waited
            emit(report, f"quiesced in {waited:.2f}s")
        except RollingRestartError:
            # Leave the failed host serving rather than restarting it with
            # work still in flight — the invariant is zero lost requests.
            handle.set_draining(False)
            emit(report, "drain timed out; host re-admitted, restart aborted")
            reports.append(report)
            raise

        t0 = perf_counter()
        new_handle = restart(name, handle)
        if new_handle is None:
            new_handle = handle
        report.restart_seconds = perf_counter() - t0
        emit(report, f"restarted in {report.restart_seconds:.2f}s")

        try:
            # In-place restarts hand back the drained handle; un-drain it so
            # the readiness wait can succeed.  Fresh incarnations start
            # undrained and this is a no-op.
            new_handle.set_draining(False)
        except Exception:  # noqa: BLE001 - the new host may still be booting
            pass
        waited = _wait_until(
            lambda: bool(new_handle.health().get("ready")),
            ready_timeout,
            poll_interval,
        )
        if waited is None:
            reports.append(report)
            raise RollingRestartError(name, "readiness", ready_timeout)
        report.ready_seconds = waited
        emit(report, f"ready in {waited:.2f}s")
        hosts[name] = new_handle
        reports.append(report)
    return reports
