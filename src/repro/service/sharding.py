"""Consistent-hash sharding of the shared cache across N cache servers.

One :class:`~repro.service.CacheServer` is a single point of failure and a
single process's throughput; a cluster of compile hosts wants its shared
result store spread over several of them.  :class:`ShardedCacheStore` is a
drop-in :class:`~repro.pipeline.CacheStore` that does exactly that:

* **Consistent hashing** — every entry key maps to one shard through a hash
  ring (stable BLAKE2 digest of the key, virtual nodes per shard), so all
  hosts agree on the placement without coordination and adding a shard moves
  only ``~1/N`` of the key space.
* **Graceful degradation** — every shard call runs with a bounded timeout on
  a dedicated worker thread.  A shard that times out or errors is marked
  *down*: its ``get``\\ s degrade to misses (the caller recompiles locally)
  and its ``put``\\ s are dropped, instead of the failure propagating into
  the compile path and failing requests.  Down shards are retried after
  ``retry_interval`` seconds with a fresh connection.
* **Per-shard stats** — :meth:`stats` aggregates the cluster-wide counters
  over the reachable shards and reports a ``shards`` section with each
  shard's health and counters, which is what the gateway's ``/v1/stats``
  and dashboard shard tiles surface.

The store is picklable the same way :class:`~repro.service.SharedCacheStore`
is: only the shard credentials travel; worker threads, ring state and health
bookkeeping are rebuilt on the far side of the pickle boundary.
"""

from __future__ import annotations

import bisect
import hashlib
import queue
import threading
from concurrent.futures import Future, InvalidStateError
from concurrent.futures import TimeoutError as FutureTimeoutError
from time import perf_counter
from typing import Any, Sequence

from ..pipeline.properties import CacheStore

__all__ = ["ShardedCacheStore", "stable_key_hash"]


def stable_key_hash(key: Any, salt: str = "") -> int:
    """A 64-bit hash of a cache key that is identical in every process.

    Builtin ``hash()`` is salted per process (``PYTHONHASHSEED``), so two
    hosts would disagree about key placement; this digest is content-only.
    Keys are the flat tuples of strings/ints produced by
    ``result_cache_key`` — ``repr`` of those is canonical.
    """
    digest = hashlib.blake2b(f"{salt}|{key!r}".encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class _ShardWorker:
    """One daemon thread funnelling calls to a single shard client.

    Calls are handed over as ``(method, args, Future)`` and awaited with a
    timeout — the *caller* stays bounded even when the shard's socket hangs.
    A timed-out worker may still be blocked inside the stale call; it is
    abandoned (daemon thread) and a fresh worker takes over on reconnect,
    so one wedged shard can never wedge the compile path.
    """

    def __init__(self, store: CacheStore, label: str):
        self.store = store
        self._inbox: queue.SimpleQueue = queue.SimpleQueue()
        self._thread = threading.Thread(
            target=self._loop, name=f"cache-shard-{label}", daemon=True
        )
        self._thread.start()

    def _loop(self) -> None:
        while True:
            item = self._inbox.get()
            if item is None:
                return
            method, args, box = item
            try:
                value = getattr(self.store, method)(*args)
            except BaseException as exc:  # noqa: BLE001 - reported through the box
                try:
                    box.set_exception(exc)
                except InvalidStateError:  # pragma: no cover - caller timed out
                    pass
            else:
                try:
                    box.set_result(value)
                except InvalidStateError:  # pragma: no cover - caller timed out
                    pass

    def call(self, method: str, args: tuple, timeout: float):
        box: Future = Future()
        self._inbox.put((method, args, box))
        return box.result(timeout)

    def stop(self) -> None:
        """Ask the worker to exit once it drains its inbox (best-effort)."""
        self._inbox.put(None)


class _ShardState:
    """Health and counters for one shard (all mutation under the store lock)."""

    def __init__(self, index: int, store: CacheStore):
        self.index = index
        self.store = store
        self.label = self._label_for(store, index)
        self.worker: _ShardWorker | None = None
        self.down = False
        self.retry_at = 0.0
        self.failures = 0
        self.timeouts = 0
        self.reconnects = 0
        self.calls = 0

    @staticmethod
    def _label_for(store: CacheStore, index: int) -> str:
        address = getattr(store, "address", None)
        if address:
            return f"{address[0]}:{address[1]}" if len(address) >= 2 else str(address)
        return f"shard-{index}"

    def ensure_worker(self) -> _ShardWorker:
        if self.worker is None:
            self.worker = _ShardWorker(self.store, self.label)
        return self.worker


class ShardedCacheStore(CacheStore):
    """Consistent-hash fan-out of one logical cache over N shard stores.

    Parameters
    ----------
    shards:
        The shard clients, usually :class:`~repro.service.SharedCacheStore`
        instances pointing at distinct :class:`~repro.service.CacheServer`
        processes (any :class:`~repro.pipeline.CacheStore` works — handy for
        tests).  Shard order defines ring placement: every host of a cluster
        must list the shards in the same order.
    timeout:
        Seconds one shard call may take before the shard is declared down.
    retry_interval:
        Seconds a down shard stays benched before a reconnect is attempted.
    vnodes:
        Virtual ring points per shard (more = smoother key distribution).
    """

    #: process-lane workers may carry this store across the pickle boundary
    shareable = True

    def __init__(
        self,
        shards: Sequence[CacheStore],
        *,
        timeout: float = 2.0,
        retry_interval: float = 5.0,
        vnodes: int = 64,
    ):
        if not shards:
            raise ValueError("ShardedCacheStore needs at least one shard")
        self.timeout = float(timeout)
        self.retry_interval = float(retry_interval)
        self.vnodes = int(vnodes)
        self._lock = threading.Lock()
        self._init_runtime(list(shards))

    def _init_runtime(self, shards: list[CacheStore]) -> None:
        """Build ring + health state (fresh per process: see ``__setstate__``)."""
        self._states = [_ShardState(i, shard) for i, shard in enumerate(shards)]
        points: list[tuple[int, int]] = []
        for index in range(len(shards)):
            for replica in range(self.vnodes):
                points.append((stable_key_hash(index, salt=f"vnode-{replica}"), index))
        points.sort()
        self._ring_hashes = [point for point, _ in points]
        self._ring_indices = [index for _, index in points]
        self._fallback_misses = 0
        self._dropped_puts = 0

    # -- placement ---------------------------------------------------------------------

    def shard_for(self, key) -> int:
        """The shard index ``key`` lives on (stable across hosts/processes)."""
        position = bisect.bisect(self._ring_hashes, stable_key_hash(key))
        if position == len(self._ring_hashes):
            position = 0
        return self._ring_indices[position]

    # -- bounded shard calls + health --------------------------------------------------

    def _usable(self, state: _ShardState) -> bool:
        """Whether the shard may be called now (handles the reconnect window)."""
        with self._lock:
            if not state.down:
                return True
            if perf_counter() < state.retry_at:
                return False
            # Reconnect attempt: bench further callers until it resolves.
            state.retry_at = perf_counter() + self.retry_interval
        reset = getattr(state.store, "reset", None)
        if callable(reset):
            reset()
        with self._lock:
            if state.worker is not None:
                state.worker.stop()
            state.worker = None  # a fresh worker (and connection) for the probe
        return True

    def _call(self, state: _ShardState, method: str, *args):
        with self._lock:
            state.calls += 1
            worker = state.ensure_worker()
        try:
            value = worker.call(method, args, self.timeout)
        except FutureTimeoutError:
            self._mark_down(state, timed_out=True)
            raise
        except Exception:
            self._mark_down(state, timed_out=False)
            raise
        with self._lock:
            if state.down:
                state.down = False
                state.reconnects += 1
        return value

    def _mark_down(self, state: _ShardState, *, timed_out: bool) -> None:
        with self._lock:
            state.failures += 1
            if timed_out:
                state.timeouts += 1
                # The worker thread is stuck inside the stale call: abandon it
                # so the next attempt gets a live one.
                state.worker = None
            state.down = True
            state.retry_at = perf_counter() + self.retry_interval

    # -- CacheStore protocol -----------------------------------------------------------

    def get(self, key) -> Any:
        state = self._states[self.shard_for(key)]
        if not self._usable(state):
            with self._lock:
                self._fallback_misses += 1
            return None
        try:
            return self._call(state, "get", key)
        except Exception:  # noqa: BLE001 - a dead shard degrades to a miss
            with self._lock:
                self._fallback_misses += 1
            return None

    def put(self, key, value, cost: float | None = None) -> None:
        state = self._states[self.shard_for(key)]
        if not self._usable(state):
            with self._lock:
                self._dropped_puts += 1
            return
        try:
            self._call(state, "put", key, value, cost)
        except Exception:  # noqa: BLE001 - a dead shard drops the write
            with self._lock:
                self._dropped_puts += 1

    def stats(self) -> dict:
        """Cluster-wide counters plus a per-shard health/counter breakdown.

        ``hits``/``misses``/``evictions``/``entries`` aggregate the
        *server-side* counters of every reachable shard (they count every
        client of the cluster, which is the point of a shared store); local
        fallback misses from down shards are folded into ``misses`` so the
        hit rate reflects what callers actually experienced.
        """
        totals = {"entries": 0, "hits": 0, "misses": 0, "evictions": 0}
        rows = []
        for state in self._states:
            with self._lock:
                row = {
                    "shard": state.label,
                    "down": state.down,
                    "failures": state.failures,
                    "timeouts": state.timeouts,
                    "reconnects": state.reconnects,
                    "calls": state.calls,
                }
            shard_stats = None
            if not row["down"]:
                try:
                    shard_stats = self._call(state, "stats")
                except Exception:  # noqa: BLE001 - shard died under the poll
                    row["down"] = True
            if shard_stats is not None:
                for field in totals:
                    totals[field] += int(shard_stats.get(field, 0))
                row.update(
                    entries=int(shard_stats.get("entries", 0)),
                    hits=int(shard_stats.get("hits", 0)),
                    misses=int(shard_stats.get("misses", 0)),
                    evictions=int(shard_stats.get("evictions", 0)),
                )
            rows.append(row)
        with self._lock:
            fallback_misses = self._fallback_misses
            dropped_puts = self._dropped_puts
        misses = totals["misses"] + fallback_misses
        lookups = totals["hits"] + misses
        return {
            "entries": totals["entries"],
            "hits": totals["hits"],
            "misses": misses,
            "evictions": totals["evictions"],
            "hit_rate": totals["hits"] / lookups if lookups else 0.0,
            "sharded": True,
            "shard_count": len(self._states),
            "shards_down": sum(1 for row in rows if row["down"]),
            "fallback_misses": fallback_misses,
            "dropped_puts": dropped_puts,
            "shards": rows,
        }

    def clear(self) -> None:
        """Clear every reachable shard (down shards are skipped, not raised)."""
        for state in self._states:
            if not self._usable(state):
                continue
            try:
                self._call(state, "clear")
            except Exception:  # noqa: BLE001 - a dead shard has nothing to clear
                pass
        with self._lock:
            self._fallback_misses = 0
            self._dropped_puts = 0

    # -- pickling: ship shard credentials, rebuild runtime state -----------------------

    def __getstate__(self) -> dict:
        return {
            "shards": [state.store for state in self._states],
            "timeout": self.timeout,
            "retry_interval": self.retry_interval,
            "vnodes": self.vnodes,
        }

    def __setstate__(self, state: dict) -> None:
        self.timeout = state["timeout"]
        self.retry_interval = state["retry_interval"]
        self.vnodes = state["vnodes"]
        self._lock = threading.Lock()
        self._init_runtime(list(state["shards"]))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        labels = ", ".join(state.label for state in self._states)
        return f"ShardedCacheStore([{labels}])"
