"""Request forwarding between sibling compile hosts.

A single :class:`~repro.service.CompileService` host saturates its lanes and
then queues; a cluster wants the overflow to land on a sibling that still has
headroom.  :class:`ForwardingService` is that router: it fronts one *local*
service and holds a :class:`~repro.service.ServiceClient` per *peer* host.
Each submission is served locally while the local queue is shallow, and
spilled to the least-loaded ready peer once the local backlog crosses
``spill_threshold`` (or the local host is draining for a rolling restart).

Everything the single-host QoS surface carries travels intact on the routed
hop: ``priority``, ``deadline`` and ``pass_overrides`` are forwarded verbatim,
and the trace context is threaded through a ``service.forward`` span so
``result.metadata["trace"]`` shows the hop explicitly::

    service.forward (peer=svc-b)
    └── service.request          # built on the peer, grafted back here
        ├── queue.wait
        └── lane.execute ...

Peers are health-checked through their ``health()`` RPC with a short cache
(``probe_interval``) so routing decisions do not add a round trip per
submission; a peer whose RPC fails is benched for ``retry_interval`` seconds.
A forwarded request whose peer dies mid-flight is resubmitted locally — a
request accepted by the router is never lost to a peer failure.

The class exposes the full service RPC surface (``submit_request`` /
``wait_result`` / ``poll_tickets`` / ``stats`` / ``ping`` / ``health`` /
``set_draining``), so ``python -m repro.service --peer host:port`` serves a
router in place of the bare service with no client-side changes.
"""

from __future__ import annotations

from concurrent.futures import Future
from dataclasses import replace
from threading import Lock
from time import perf_counter
from typing import TYPE_CHECKING

from ..obs import Span, as_context
from .client import ServiceClient
from .service import CompileService, TicketBook

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.registry import CompilerBackend
    from ..circuit.circuit import QuantumCircuit
    from ..devices.device import Device

__all__ = ["ForwardingService"]


class _Peer:
    """One sibling host: its client, cached health, and routing counters."""

    def __init__(self, name: str, client: ServiceClient):
        self.name = name
        self.client = client
        self.health: dict | None = None
        self.checked_at = float("-inf")
        self.down = False
        self.retry_at = 0.0
        self.forwarded = 0
        self.errors = 0
        self.rescued = 0  # forwards that failed and were re-served locally


class ForwardingService:
    """Route submissions between a local service and its cluster peers.

    Parameters
    ----------
    service:
        The local :class:`CompileService` this router fronts.
    peers:
        ``{name: ServiceClient}`` (or an iterable of clients, named by their
        ``ping()``) for the sibling hosts.  More can be added later with
        :meth:`add_peer`; a restarted host is swapped in with
        :meth:`replace_peer`.
    spill_threshold:
        Local backlog (queued + in-flight requests) at which submissions
        start spilling to peers.  The router still compares loads: it only
        forwards to a peer reporting *less* backlog than the local host.
    probe_interval:
        Seconds a peer health snapshot stays fresh; routing never does more
        than one ``health()`` RPC per peer per interval.
    retry_interval:
        Seconds an unreachable peer stays benched before being re-probed.
    """

    def __init__(
        self,
        service: CompileService,
        peers: "dict[str, ServiceClient] | list[ServiceClient] | None" = None,
        *,
        spill_threshold: int = 4,
        probe_interval: float = 1.0,
        retry_interval: float = 5.0,
    ):
        self.service = service
        self.spill_threshold = int(spill_threshold)
        self.probe_interval = float(probe_interval)
        self.retry_interval = float(retry_interval)
        self._lock = Lock()
        self._peers: list[_Peer] = []
        self._ticket_book = TicketBook()
        self._served_local = 0
        self._outstanding = 0  # forwarded requests not yet resolved
        if peers:
            items = peers.items() if isinstance(peers, dict) else ((None, c) for c in peers)
            for name, client in items:
                self.add_peer(client, name=name)

    # -- peer management ---------------------------------------------------------------

    def add_peer(self, client: ServiceClient, name: str | None = None) -> str:
        """Register a sibling host; returns the name it is tracked under."""
        if name is None:
            name = client.ping()  # raises early if the peer is unreachable
        with self._lock:
            self._peers.append(_Peer(name, client))
        return name

    def replace_peer(self, name: str, client: ServiceClient) -> None:
        """Swap a peer's client (e.g. after its host restarted) and un-bench it.

        The old client is closed; counters carry over so ``stats()`` keeps
        the peer's full history across restarts.
        """
        with self._lock:
            for peer in self._peers:
                if peer.name == name:
                    old = peer.client
                    peer.client = client
                    peer.down = False
                    peer.health = None
                    peer.checked_at = float("-inf")
                    break
            else:
                raise KeyError(f"unknown peer {name!r}")
        try:
            old.close()
        except Exception:  # noqa: BLE001 - the old client may already be dead
            pass

    def remove_peer(self, name: str) -> None:
        """Drop a peer from rotation (its client is closed)."""
        with self._lock:
            for index, peer in enumerate(self._peers):
                if peer.name == name:
                    del self._peers[index]
                    break
            else:
                raise KeyError(f"unknown peer {name!r}")
        try:
            peer.client.close()
        except Exception:  # noqa: BLE001
            pass

    # -- routing -----------------------------------------------------------------------

    def _peer_health(self, peer: _Peer) -> dict | None:
        """The peer's health snapshot, refreshed at most once per probe interval."""
        now = perf_counter()
        with self._lock:
            if peer.down and now < peer.retry_at:
                return None
            if peer.health is not None and now - peer.checked_at < self.probe_interval:
                return peer.health if not peer.down else None
        try:
            health = peer.client.health()
        except Exception:  # noqa: BLE001 - unreachable peer leaves rotation
            with self._lock:
                peer.errors += 1
                peer.down = True
                peer.health = None
                peer.checked_at = now
                peer.retry_at = now + self.retry_interval
            return None
        with self._lock:
            peer.down = False
            peer.health = health
            peer.checked_at = now
        return health

    def _pick_peer(self, local_backlog: int, local_ready: bool) -> _Peer | None:
        """The ready peer with the least backlog — if spilling beats serving locally."""
        with self._lock:
            peers = list(self._peers)
        best: _Peer | None = None
        best_backlog = local_backlog if local_ready else float("inf")
        for peer in peers:
            health = self._peer_health(peer)
            if not health or not health.get("ready"):
                continue
            backlog = int(health.get("unfinished", 0))
            if backlog < best_backlog:
                best, best_backlog = peer, backlog
        return best

    def submit(
        self,
        circuit: "QuantumCircuit",
        backend: "str | CompilerBackend" = "qiskit-o3",
        *,
        device: "Device | str | None" = None,
        objective: str = "fidelity",
        seed: int = 0,
        priority: int = 0,
        deadline: float | None = None,
        pass_overrides: dict | None = None,
        trace=None,
    ) -> Future:
        """Submit one compilation; serves locally or forwards to a peer.

        The signature and semantics match :meth:`CompileService.submit`; the
        only observable differences on a forwarded request are the
        ``service.forward`` root span in ``result.metadata["trace"]`` and a
        ``metadata["forwarded_to"]`` entry naming the peer.
        """
        health = self.service.health()
        local_ready = bool(health.get("ready"))
        local_backlog = int(health.get("unfinished", 0))
        peer = None
        if not local_ready or local_backlog >= self.spill_threshold:
            peer = self._pick_peer(local_backlog, local_ready)
        kwargs = dict(
            device=device,
            objective=objective,
            seed=seed,
            priority=priority,
            deadline=deadline,
            pass_overrides=pass_overrides,
        )
        if peer is None:
            with self._lock:
                self._served_local += 1
            return self.service.submit(circuit, backend, trace=trace, **kwargs)
        return self._forward(peer, circuit, backend, trace, kwargs)

    def _forward(self, peer: _Peer, circuit, backend, trace, kwargs) -> Future:
        ctx = as_context(trace)
        fwd_span = None
        if ctx is not None:
            fwd_span = Span("service.forward", context=ctx, attrs={"peer": peer.name})
        try:
            inner = peer.client.submit(
                circuit, backend, trace=fwd_span.context() if fwd_span else None, **kwargs
            )
        except Exception:  # noqa: BLE001 - peer died between probe and submit
            with self._lock:
                peer.errors += 1
                peer.rescued += 1
                peer.down = True
                peer.retry_at = perf_counter() + self.retry_interval
            if fwd_span is not None:
                fwd_span.finish(status="error", error="submit failed; served locally")
            with self._lock:
                self._served_local += 1
            return self.service.submit(circuit, backend, trace=trace, **kwargs)
        with self._lock:
            peer.forwarded += 1
            self._outstanding += 1
        outer: Future = Future()
        outer.set_running_or_notify_cancel()
        inner.add_done_callback(
            lambda f: self._resolve_forward(outer, f, peer, fwd_span, circuit, backend, trace, kwargs)
        )
        return outer

    def _resolve_forward(
        self, outer: Future, inner: Future, peer: _Peer, fwd_span, circuit, backend, trace, kwargs
    ) -> None:
        with self._lock:
            self._outstanding -= 1
        try:
            result = inner.result()
        except Exception:  # noqa: BLE001 - peer lost mid-flight: rescue locally
            with self._lock:
                peer.errors += 1
                peer.rescued += 1
                peer.down = True
                peer.retry_at = perf_counter() + self.retry_interval
                self._served_local += 1
            if fwd_span is not None:
                fwd_span.finish(status="error", error="peer lost; re-served locally")
            try:
                retry = self.service.submit(circuit, backend, trace=trace, **kwargs)
            except Exception as exc:  # noqa: BLE001 - local refusal is terminal
                outer.set_exception(exc)
                return
            retry.add_done_callback(
                lambda f: outer.set_exception(f.exception())
                if f.exception()
                else outer.set_result(f.result())
            )
            return
        metadata = {**result.metadata, "forwarded_to": peer.name}
        if fwd_span is not None:
            fwd_span.finish(status="ok" if result.succeeded else "error")
            remote_tree = result.metadata.get("trace")
            if remote_tree is not None:
                fwd_span.add(remote_tree)
            metadata["trace"] = fwd_span.to_dict()
        outer.set_result(replace(result, metadata=metadata))

    def submit_many(self, circuits, backend="qiskit-o3", **kwargs) -> list[Future]:
        """One future per circuit, in input order (each routed independently)."""
        kwargs["trace"] = as_context(kwargs.get("trace"))
        return [self.submit(circuit, backend, **kwargs) for circuit in circuits]

    # -- service RPC surface -----------------------------------------------------------

    def submit_request(
        self,
        circuit: "QuantumCircuit",
        backend: str = "qiskit-o3",
        device: str | None = None,
        objective: str = "fidelity",
        seed: int = 0,
        priority: int = 0,
        deadline: float | None = None,
        pass_overrides: dict | None = None,
        trace: dict | None = None,
    ) -> str:
        """``submit()`` for remote callers — same ticket protocol as the service."""
        future = self.submit(
            circuit,
            backend,
            device=device,
            objective=objective,
            seed=seed,
            priority=priority,
            deadline=deadline,
            pass_overrides=pass_overrides,
            trace=trace,
        )
        return self._ticket_book.issue(future)

    def wait_result(self, ticket: str, timeout: float | None = None):
        """Block until the ticket's request resolves; the ticket is single-use."""
        return self._ticket_book.wait(ticket, timeout)

    def poll_tickets(self, tickets, timeout: float = 0.5) -> dict:
        """Resolve any finished tickets among ``tickets`` in one bounded wait."""
        return self._ticket_book.poll(tickets, timeout)

    def ping(self) -> str:
        return self.service.ping()

    def add_observer(self, observer) -> None:
        """Observe the *local* service's request lifecycle (gateway SSE seam).

        Forwarded requests emit their lifecycle events on the peer; the local
        observer sees them only as resolved futures.
        """
        self.service.add_observer(observer)

    def remove_observer(self, observer) -> None:
        self.service.remove_observer(observer)

    def set_draining(self, draining: bool = True) -> None:
        """Propagate the drain flag to the fronted service."""
        self.service.set_draining(draining)

    @property
    def draining(self) -> bool:
        return self.service.draining

    def health(self) -> dict:
        """Local health plus the router's view of the cluster.

        ``unfinished`` includes requests this router forwarded that have not
        resolved yet, so a rolling-restart drain waits for forwarded work too.
        """
        health = self.service.health()
        with self._lock:
            outstanding = self._outstanding
            peers_ready = sum(
                1 for p in self._peers if not p.down and (p.health or {}).get("ready")
            )
            peer_count = len(self._peers)
        health["unfinished"] += outstanding
        health["forwarded_in_flight"] = outstanding
        health["peers"] = peer_count
        health["peers_ready"] = peers_ready
        return health

    def stats(self) -> dict:
        """The local service's stats plus a per-peer routing section."""
        stats = self.service.stats()
        with self._lock:
            rows = [
                {
                    "peer": peer.name,
                    "down": peer.down,
                    "ready": bool((peer.health or {}).get("ready")),
                    "backlog": (peer.health or {}).get("unfinished"),
                    "forwarded": peer.forwarded,
                    "errors": peer.errors,
                    "rescued": peer.rescued,
                }
                for peer in self._peers
            ]
            stats["forwarding"] = {
                "served_local": self._served_local,
                "forwarded": sum(row["forwarded"] for row in rows),
                "rescued": sum(row["rescued"] for row in rows),
                "outstanding": self._outstanding,
                "spill_threshold": self.spill_threshold,
                "peers": rows,
            }
        return stats

    # -- lifecycle ---------------------------------------------------------------------

    def drain(self, timeout: float | None = None) -> bool:
        return self.service.drain(timeout)

    def shutdown(self, *, drain: bool = True, timeout: float | None = None) -> None:
        """Shut the fronted service down and close every peer client."""
        self.service.shutdown(drain=drain, timeout=timeout)
        with self._lock:
            peers = list(self._peers)
        for peer in peers:
            try:
                peer.client.close()
            except Exception:  # noqa: BLE001
                pass

    def __enter__(self) -> "ForwardingService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            names = ", ".join(peer.name for peer in self._peers)
        return f"ForwardingService({self.service.name}, peers=[{names}])"
