"""Server-backed shared cache: one entry set visible from many processes.

The in-process caches (:class:`~repro.pipeline.TransformCache`, the batch
service's ``CompilationCache``) keep their entries in a private
:class:`~repro.pipeline.DictStore` — invisible to worker processes, so a
``ProcessPoolExecutor`` lane or an ``AsyncVectorEnv`` fleet recomputes what a
sibling process already produced.  This module closes that gap:

* :class:`CacheServer` hosts one :class:`~repro.pipeline.DictStore` in a
  dedicated manager process and hands out connection credentials;
* :class:`SharedCacheStore` is a picklable client implementing the
  :class:`~repro.pipeline.CacheStore` protocol over that server.  Any cache
  built with ``store=shared_store`` — in the parent, in a pool worker, in a
  vec-env member process — reads and writes the *same* entries, and the
  hit/miss/eviction counters aggregate across all of them (which is how the
  service's cross-worker-hit metrics are measured).

Every ``get``/``put`` is one round trip to the server, so the shared store
only pays off for values that are expensive to recompute — compiled circuits
and compilation results, not micro-analyses.
"""

from __future__ import annotations

import os
from multiprocessing.managers import BaseManager
from typing import Any

from ..pipeline.properties import CacheStore, CostAwareStore, DictStore

__all__ = ["CacheServer", "SharedCacheStore"]

#: store methods exposed through the manager proxy
_STORE_METHODS = ("get", "put", "stats", "clear")

#: eviction policies a cache server can host
_POLICIES = {"lru": DictStore, "cost": CostAwareStore}

#: the one store instance served by a cache-server process (set by the
#: manager-process initializer, resolved by the registered ``store`` callable)
_SERVER_STORE: CacheStore | None = None


def _init_server_store(maxsize: int, policy: str = "lru") -> None:
    global _SERVER_STORE
    _SERVER_STORE = _POLICIES[policy](maxsize)


def _get_server_store() -> CacheStore:
    assert _SERVER_STORE is not None, "cache-server process not initialised"
    return _SERVER_STORE


class _StoreManager(BaseManager):
    """Manager serving exactly one shared :class:`DictStore`."""


_StoreManager.register("store", callable=_get_server_store, exposed=_STORE_METHODS)


class SharedCacheStore(CacheStore):
    """Picklable :class:`CacheStore` client of a :class:`CacheServer`.

    Connects lazily (and per process — the proxy is dropped on pickling and
    re-established on first use), so instances can be shipped to pool workers
    and ``AsyncVectorEnv`` member processes as plain constructor arguments.
    One instance is safe to use from multiple threads: manager proxies keep
    one connection per thread.
    """

    def __init__(self, address: tuple, authkey: bytes):
        self.address = tuple(address)
        self.authkey = bytes(authkey)
        self._proxy = None

    def _store(self):
        if self._proxy is None:
            manager = _StoreManager(address=self.address, authkey=self.authkey)
            manager.connect()
            self._proxy = manager.store()
        return self._proxy

    def reset(self) -> None:
        """Drop the live proxy so the next call reconnects from scratch.

        A cache server that died and came back at the same address serves a
        *new* store object; the old proxy token points at the dead one.  The
        sharded store calls this before a reconnect attempt so the retry
        negotiates a fresh proxy instead of replaying a stale token.
        """
        self._proxy = None

    def get(self, key) -> Any:
        return self._store().get(key)

    def put(self, key, value, cost: float | None = None) -> None:
        self._store().put(key, value, cost)

    def stats(self) -> dict[str, float]:
        return self._store().stats()

    def clear(self) -> None:
        self._store().clear()

    # -- pickling: ship credentials, reconnect on the other side ---------------------

    def __getstate__(self) -> dict:
        return {"address": self.address, "authkey": self.authkey}

    def __setstate__(self, state: dict) -> None:
        self.address = state["address"]
        self.authkey = state["authkey"]
        self._proxy = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SharedCacheStore(address={self.address!r})"


class CacheServer:
    """A cache server process hosting one shared store.

    Starts a manager process owning a single store and hands out
    :class:`SharedCacheStore` clients::

        with CacheServer(maxsize=4096) as server:
            cache = CompilationCache(store=server.store())
            ...  # every process holding a store client shares the entries

    ``policy`` selects the server-side eviction policy: ``"lru"`` (a
    :class:`~repro.pipeline.DictStore`, the default) or ``"cost"`` (a
    :class:`~repro.pipeline.CostAwareStore`, which keeps expensive
    compilations resident and evicts cheap-to-recompute entries first).

    The server lives until :meth:`shutdown` (or context-manager exit); client
    stores created from it keep working across ``fork``/``spawn`` because
    they carry only the address and authkey.

    ``address`` is a plain TCP bind: ``("0.0.0.0", 7800)`` exposes the store
    to other machines, which is how several ``python -m repro.service`` hosts
    share one result/transform shard.  Cross-machine deployments must pass an
    explicit ``authkey`` (every host needs the same secret — see the service
    CLI's ``--authkey-file``); the default random key only works for clients
    spawned by this process.
    """

    def __init__(
        self,
        maxsize: int = 4096,
        *,
        policy: str = "lru",
        address: tuple = ("127.0.0.1", 0),
        authkey: bytes | None = None,
    ):
        if policy not in _POLICIES:
            raise ValueError(
                f"unknown cache policy {policy!r}; expected one of {sorted(_POLICIES)}"
            )
        self._authkey = bytes(authkey) if authkey is not None else os.urandom(16)
        self._manager = _StoreManager(address=address, authkey=self._authkey)
        self._manager.start(initializer=_init_server_store, initargs=(maxsize, policy))
        self.address = self._manager.address
        self.maxsize = maxsize
        self.policy = policy
        self._running = True
        # One long-lived client backs stats(): constructing a fresh
        # SharedCacheStore per call would open a new manager connection every
        # time a dashboard or stats aggregator polls the server.
        self._stats_client: SharedCacheStore | None = None

    @property
    def authkey(self) -> bytes:
        """The server's shared secret (what remote hosts need to connect)."""
        return self._authkey

    def store(self) -> SharedCacheStore:
        """A new picklable client of this server's store."""
        if not self._running:
            raise RuntimeError("CacheServer is shut down")
        return SharedCacheStore(self.address, self._authkey)

    def stats(self) -> dict[str, float]:
        """The server-side counters (aggregated over every client).

        Served through one cached client connection — polling stats in a
        loop (dashboards, the sharded store's per-shard aggregation) must
        not churn a manager connection per call.
        """
        if not self._running:
            raise RuntimeError("CacheServer is shut down")
        if self._stats_client is None:
            self._stats_client = self.store()
        return self._stats_client.stats()

    def shutdown(self) -> None:
        """Stop the server process (idempotent)."""
        if self._running:
            self._running = False
            self._stats_client = None
            self._manager.shutdown()

    def __enter__(self) -> "CacheServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "running" if self._running else "stopped"
        return f"CacheServer(address={self.address!r}, {state})"
