""":class:`ServiceClient` — the caller's view of a compile service.

One client class covers both deployment shapes:

* **In-process** — ``ServiceClient(service)`` wraps a live
  :class:`~repro.service.CompileService` directly; ``submit`` returns the
  service's own future.
* **Remote** — ``ServiceClient(address=(host, port), authkey=...)`` connects
  to a ``python -m repro.service`` server over a ``multiprocessing`` manager.
  ``submit`` obtains a ticket from the server and returns a local future
  resolved by a background waiter thread, so the calling code is identical in
  both shapes::

      client = ServiceClient(address=("127.0.0.1", 7707), authkey=b"...")
      futures = client.submit_many(circuits, backend="qiskit-o3")
      results = [f.result() for f in futures]
      print(client.stats()["cache"]["hit_rate"])
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from multiprocessing.managers import BaseManager
from typing import TYPE_CHECKING

from ..obs import as_context
from .service import SERVICE_RPC_METHODS, CompileService

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.registry import CompilerBackend
    from ..circuit.circuit import QuantumCircuit
    from ..devices.device import Device

__all__ = ["ServiceClient", "ServiceManager", "ServiceTimeout"]

# On 3.11+ concurrent.futures.TimeoutError *is* the builtin TimeoutError; on
# 3.10 they are distinct classes, and existing callers may catch either one.
_TIMEOUT_BASES = (
    (TimeoutError,)
    if FutureTimeoutError is TimeoutError
    else (TimeoutError, FutureTimeoutError)
)


class ServiceTimeout(*_TIMEOUT_BASES):
    """A :meth:`ServiceClient.result` wait elapsed before the request resolved.

    Unlike the bare ``concurrent.futures.TimeoutError`` it replaces, the
    exception records the service state at expiry: :attr:`queue_depth` (how
    many requests were still waiting, ``None`` if the service was
    unreachable) tells the caller whether the service is backlogged or the
    single request is slow.
    """

    def __init__(self, timeout: float, queue_depth: int | None):
        self.timeout = timeout
        self.queue_depth = queue_depth
        depth = "unknown" if queue_depth is None else str(queue_depth)
        super().__init__(
            f"no result within {timeout:g}s (queue depth {depth} at expiry)"
        )


class ServiceManager(BaseManager):
    """Manager protocol shared by ``python -m repro.service`` and its clients."""


ServiceManager.register("compile_service", exposed=SERVICE_RPC_METHODS)


class ServiceClient:
    """Submit circuits to a compile service and collect the results as futures."""

    def __init__(
        self,
        service: CompileService | None = None,
        *,
        address: tuple | None = None,
        authkey: bytes | None = None,
        max_waiters: int = 8,
    ):
        if (service is None) == (address is None):
            raise ValueError("pass exactly one of `service` (in-process) or `address` (remote)")
        self._service = service
        self._proxy = None
        self._waiters: ThreadPoolExecutor | None = None
        if address is not None:
            if authkey is None:
                raise ValueError("remote clients need the server's authkey")
            manager = ServiceManager(address=tuple(address), authkey=authkey)
            manager.connect()
            self._proxy = manager.compile_service()
            # One waiter pool resolves remote tickets into local futures;
            # manager proxies hold one connection per thread, so concurrent
            # blocking wait_result calls do not serialise each other.
            self._waiters = ThreadPoolExecutor(
                max_workers=max_waiters, thread_name_prefix="svc-client"
            )

    def submit(
        self,
        circuit: "QuantumCircuit",
        backend: "str | CompilerBackend" = "qiskit-o3",
        *,
        device: "Device | str | None" = None,
        objective: str = "fidelity",
        seed: int = 0,
        priority: int = 0,
        deadline: float | None = None,
        pass_overrides: dict | None = None,
        trace=None,
    ) -> Future:
        """Submit one compilation; returns a future of its ``CompilationResult``.

        ``priority`` (higher first), ``deadline`` (seconds; expired requests
        resolve to a ``DeadlineExceeded`` failure result) and
        ``pass_overrides`` (stage-slot substitutions for preset backends)
        ride along to the service — the semantics are identical in-process
        and remote.

        ``trace`` (a :class:`~repro.obs.Span`, ``SpanContext`` or wire dict;
        default: the calling thread's active span) parents the service's
        span tree there.  Remote submissions reduce the context to its
        ``{"trace_id", "span_id"}`` wire form, so the resulting tree in
        ``result.metadata["trace"]`` is structurally identical to the
        in-process one.
        """
        if self._service is not None:
            return self._service.submit(
                circuit,
                backend,
                device=device,
                objective=objective,
                seed=seed,
                priority=priority,
                deadline=deadline,
                pass_overrides=pass_overrides,
                trace=trace,
            )
        if not isinstance(backend, str):
            # Remote services resolve names against their own registry;
            # instances generally do not round-trip.
            backend = getattr(backend, "name", backend)
        device_name = device if isinstance(device, str) or device is None else device.name
        ctx = as_context(trace)
        ticket = self._proxy.submit_request(
            circuit, backend, device_name, objective, seed, priority, deadline,
            pass_overrides, ctx.to_dict() if ctx is not None else None,
        )
        assert self._waiters is not None
        return self._waiters.submit(self._proxy.wait_result, ticket)

    def submit_many(
        self,
        circuits,
        backend: "str | CompilerBackend" = "qiskit-o3",
        *,
        device: "Device | str | None" = None,
        objective: str = "fidelity",
        seed: int = 0,
        priority: int = 0,
        deadline: float | None = None,
        pass_overrides: dict | None = None,
        trace=None,
    ) -> list[Future]:
        """One future per circuit, in input order."""
        # Pin the trace context once so the whole batch shares one parent.
        ctx = as_context(trace)
        return [
            self.submit(
                circuit,
                backend,
                device=device,
                objective=objective,
                seed=seed,
                priority=priority,
                deadline=deadline,
                pass_overrides=pass_overrides,
                trace=ctx,
            )
            for circuit in circuits
        ]

    def result(self, future: Future, timeout: float | None = None):
        """Block on one future from :meth:`submit`/:meth:`submit_many`.

        A wait that outlives ``timeout`` raises :class:`ServiceTimeout`
        carrying the service's queue depth at expiry, so callers can tell a
        backlogged service from one slow request.
        """
        try:
            return future.result(timeout)
        except FutureTimeoutError:
            raise ServiceTimeout(timeout, self._probe_queue_depth()) from None

    def _probe_queue_depth(self) -> int | None:
        """Best-effort queue depth for timeout diagnostics.

        Remote stats are fetched on a throwaway daemon thread with a bounded
        join: a wedged server must not turn a bounded ``result(timeout=...)``
        into an unbounded hang while we gather the error message.
        """
        if self._service is not None:
            try:
                return self._service.stats()["queue_depth"]
            except Exception:  # noqa: BLE001 - depth is best-effort diagnostics
                return None
        box: list = []

        def probe() -> None:
            try:
                box.append(self._proxy.stats()["queue_depth"])
            except Exception:  # noqa: BLE001 - depth is best-effort diagnostics
                pass

        thread = threading.Thread(target=probe, daemon=True)
        thread.start()
        thread.join(timeout=1.0)
        return box[0] if box else None

    def stats(self) -> dict:
        """The service's metrics (queue depth, cache counters, lanes, latency)."""
        if self._service is not None:
            return self._service.stats()
        return self._proxy.stats()

    def ping(self) -> str:
        """The service's name — raises if a remote server is unreachable."""
        if self._service is not None:
            return self._service.ping()
        return self._proxy.ping()

    def health(self) -> dict:
        """The service's readiness snapshot (``status`` / ``ready`` / depth)."""
        if self._service is not None:
            return self._service.health()
        return self._proxy.health()

    def close(self) -> None:
        """Release client-side resources (never stops the service itself)."""
        if self._waiters is not None:
            self._waiters.shutdown(wait=False)

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "in-process" if self._service is not None else "remote"
        return f"ServiceClient({mode})"
