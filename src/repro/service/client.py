""":class:`ServiceClient` — the caller's view of a compile service.

One client class covers both deployment shapes:

* **In-process** — ``ServiceClient(service)`` wraps a live
  :class:`~repro.service.CompileService` directly; ``submit`` returns the
  service's own future.
* **Remote** — ``ServiceClient(address=(host, port), authkey=...)`` connects
  to a ``python -m repro.service`` server over a ``multiprocessing`` manager.
  ``submit`` obtains a ticket from the server and returns a local future
  resolved by a background waiter thread, so the calling code is identical in
  both shapes::

      client = ServiceClient(address=("127.0.0.1", 7707), authkey=b"...")
      futures = client.submit_many(circuits, backend="qiskit-o3")
      results = [f.result() for f in futures]
      print(client.stats()["cache"]["hit_rate"])
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor
from multiprocessing.managers import BaseManager
from typing import TYPE_CHECKING

from .service import SERVICE_RPC_METHODS, CompileService

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.registry import CompilerBackend
    from ..circuit.circuit import QuantumCircuit
    from ..devices.device import Device

__all__ = ["ServiceClient", "ServiceManager"]


class ServiceManager(BaseManager):
    """Manager protocol shared by ``python -m repro.service`` and its clients."""


ServiceManager.register("compile_service", exposed=SERVICE_RPC_METHODS)


class ServiceClient:
    """Submit circuits to a compile service and collect the results as futures."""

    def __init__(
        self,
        service: CompileService | None = None,
        *,
        address: tuple | None = None,
        authkey: bytes | None = None,
        max_waiters: int = 8,
    ):
        if (service is None) == (address is None):
            raise ValueError("pass exactly one of `service` (in-process) or `address` (remote)")
        self._service = service
        self._proxy = None
        self._waiters: ThreadPoolExecutor | None = None
        if address is not None:
            if authkey is None:
                raise ValueError("remote clients need the server's authkey")
            manager = ServiceManager(address=tuple(address), authkey=authkey)
            manager.connect()
            self._proxy = manager.compile_service()
            # One waiter pool resolves remote tickets into local futures;
            # manager proxies hold one connection per thread, so concurrent
            # blocking wait_result calls do not serialise each other.
            self._waiters = ThreadPoolExecutor(
                max_workers=max_waiters, thread_name_prefix="svc-client"
            )

    def submit(
        self,
        circuit: "QuantumCircuit",
        backend: "str | CompilerBackend" = "qiskit-o3",
        *,
        device: "Device | str | None" = None,
        objective: str = "fidelity",
        seed: int = 0,
    ) -> Future:
        """Submit one compilation; returns a future of its ``CompilationResult``."""
        if self._service is not None:
            return self._service.submit(
                circuit, backend, device=device, objective=objective, seed=seed
            )
        if not isinstance(backend, str):
            # Remote services resolve names against their own registry;
            # instances generally do not round-trip.
            backend = getattr(backend, "name", backend)
        device_name = device if isinstance(device, str) or device is None else device.name
        ticket = self._proxy.submit_request(circuit, backend, device_name, objective, seed)
        assert self._waiters is not None
        return self._waiters.submit(self._proxy.wait_result, ticket)

    def submit_many(
        self,
        circuits,
        backend: "str | CompilerBackend" = "qiskit-o3",
        *,
        device: "Device | str | None" = None,
        objective: str = "fidelity",
        seed: int = 0,
    ) -> list[Future]:
        """One future per circuit, in input order."""
        return [
            self.submit(circuit, backend, device=device, objective=objective, seed=seed)
            for circuit in circuits
        ]

    def result(self, future: Future, timeout: float | None = None):
        """Convenience: block on one future from :meth:`submit`/:meth:`submit_many`."""
        return future.result(timeout)

    def stats(self) -> dict:
        """The service's metrics (queue depth, cache counters, lanes, latency)."""
        if self._service is not None:
            return self._service.stats()
        return self._proxy.stats()

    def ping(self) -> str:
        """The service's name — raises if a remote server is unreachable."""
        if self._service is not None:
            return self._service.ping()
        return self._proxy.ping()

    def close(self) -> None:
        """Release client-side resources (never stops the service itself)."""
        if self._waiters is not None:
            self._waiters.shutdown(wait=False)

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "in-process" if self._service is not None else "remote"
        return f"ServiceClient({mode})"
