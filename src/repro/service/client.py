""":class:`ServiceClient` — the caller's view of a compile service.

One client class covers both deployment shapes:

* **In-process** — ``ServiceClient(service)`` wraps a live
  :class:`~repro.service.CompileService` directly; ``submit`` returns the
  service's own future.
* **Remote** — ``ServiceClient(address=(host, port), authkey=...)`` connects
  to a ``python -m repro.service`` server over a ``multiprocessing`` manager.
  ``submit`` obtains a ticket from the server and returns a local future
  resolved by a background waiter thread, so the calling code is identical in
  both shapes::

      client = ServiceClient(address=("127.0.0.1", 7707), authkey=b"...")
      futures = client.submit_many(circuits, backend="qiskit-o3")
      results = [f.result() for f in futures]
      print(client.stats()["cache"]["hit_rate"])

Remote ticket resolution is *multiplexed*: one waiter thread polls every
outstanding ticket through the server's ``poll_tickets`` RPC, so any number
of in-flight requests resolve in completion order — a finished high-priority
request never waits behind slower ones, no matter how many were submitted
first.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from multiprocessing.managers import BaseManager
from typing import TYPE_CHECKING

from ..obs import as_context
from .service import SERVICE_RPC_METHODS, CompileService

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.registry import CompilerBackend
    from ..circuit.circuit import QuantumCircuit
    from ..devices.device import Device

__all__ = ["ServiceClient", "ServiceManager", "ServiceTimeout"]

# On 3.11+ concurrent.futures.TimeoutError *is* the builtin TimeoutError; on
# 3.10 they are distinct classes, and existing callers may catch either one.
_TIMEOUT_BASES = (
    (TimeoutError,)
    if FutureTimeoutError is TimeoutError
    else (TimeoutError, FutureTimeoutError)
)


class ServiceTimeout(*_TIMEOUT_BASES):
    """A :meth:`ServiceClient.result` wait elapsed before the request resolved.

    Unlike the bare ``concurrent.futures.TimeoutError`` it replaces, the
    exception records the service state at expiry: :attr:`queue_depth` (how
    many requests were still waiting, ``None`` if the service was
    unreachable) tells the caller whether the service is backlogged or the
    single request is slow.
    """

    def __init__(self, timeout: float, queue_depth: int | None):
        self.timeout = timeout
        self.queue_depth = queue_depth
        depth = "unknown" if queue_depth is None else str(queue_depth)
        super().__init__(
            f"no result within {timeout:g}s (queue depth {depth} at expiry)"
        )


class ServiceManager(BaseManager):
    """Manager protocol shared by ``python -m repro.service`` and its clients."""


ServiceManager.register("compile_service", exposed=SERVICE_RPC_METHODS)


class ServiceClient:
    """Submit circuits to a compile service and collect the results as futures."""

    #: consecutive waiter-loop RPC failures before pending futures are failed
    _WAITER_ERROR_LIMIT = 3
    #: seconds one server-side poll_tickets call may block
    _POLL_WINDOW = 0.25

    def __init__(
        self,
        service: CompileService | None = None,
        *,
        address: tuple | None = None,
        authkey: bytes | None = None,
        max_waiters: int | None = None,  # noqa: ARG002 - kept for API compat
    ):
        if (service is None) == (address is None):
            raise ValueError("pass exactly one of `service` (in-process) or `address` (remote)")
        self._service = service
        self._proxy = None
        # One multiplexing waiter thread resolves every remote ticket through
        # the server's poll_tickets RPC (started lazily on first submit).
        # ``max_waiters`` is obsolete — the old per-ticket waiter pool capped
        # concurrent resolution at 8 and left completed tickets stuck behind
        # blocked waiters — but stays in the signature for older callers.
        self._waiter: threading.Thread | None = None
        self._pending: dict[str, Future] = {}
        self._pending_lock = threading.Lock()
        self._wake = threading.Event()
        self._stop = threading.Event()
        if address is not None:
            if authkey is None:
                raise ValueError("remote clients need the server's authkey")
            manager = ServiceManager(address=tuple(address), authkey=authkey)
            manager.connect()
            self._proxy = manager.compile_service()

    # -- remote ticket multiplexing ----------------------------------------------------

    def _register_ticket(self, ticket: str) -> Future:
        """File a ticket with the waiter thread; returns its local future."""
        future: Future = Future()
        future.set_running_or_notify_cancel()
        with self._pending_lock:
            if self._stop.is_set():
                raise RuntimeError("ServiceClient is closed")
            self._pending[ticket] = future
            if self._waiter is None:
                self._waiter = threading.Thread(
                    target=self._waiter_loop, name="svc-client-waiter", daemon=True
                )
                self._waiter.start()
        self._wake.set()
        return future

    def _waiter_loop(self) -> None:
        """Resolve outstanding tickets in completion order, one RPC at a time.

        Manager proxies keep one connection per thread, so this thread's
        ``poll_tickets`` calls never contend with submissions from caller
        threads.  After ``_WAITER_ERROR_LIMIT`` consecutive RPC failures the
        outstanding futures are failed with the last error (the server is
        gone — e.g. restarted, which also invalidates its tickets) and the
        loop keeps serving tickets from any later submissions.
        """
        consecutive_errors = 0
        while not self._stop.is_set():
            with self._pending_lock:
                tickets = list(self._pending)
            if not tickets:
                self._wake.wait(timeout=0.1)
                self._wake.clear()
                continue
            try:
                done = self._proxy.poll_tickets(tickets, self._POLL_WINDOW)
            except Exception as exc:  # noqa: BLE001 - RPC failure, not a result
                consecutive_errors += 1
                if consecutive_errors >= self._WAITER_ERROR_LIMIT:
                    self._fail_pending(
                        RuntimeError(
                            f"service connection lost while waiting for results: {exc}"
                        )
                    )
                    consecutive_errors = 0
                else:
                    self._stop.wait(timeout=0.2)
                continue
            consecutive_errors = 0
            for ticket, result in done.items():
                with self._pending_lock:
                    future = self._pending.pop(ticket, None)
                if future is not None:
                    future.set_result(result)
        self._fail_pending(RuntimeError("ServiceClient closed with requests outstanding"))

    def _fail_pending(self, error: Exception) -> None:
        with self._pending_lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for future in pending:
            try:
                future.set_exception(error)
            except Exception:  # noqa: BLE001 - already resolved elsewhere
                pass

    def submit(
        self,
        circuit: "QuantumCircuit",
        backend: "str | CompilerBackend" = "qiskit-o3",
        *,
        device: "Device | str | None" = None,
        objective: str = "fidelity",
        seed: int = 0,
        priority: int = 0,
        deadline: float | None = None,
        pass_overrides: dict | None = None,
        trace=None,
    ) -> Future:
        """Submit one compilation; returns a future of its ``CompilationResult``.

        ``priority`` (higher first), ``deadline`` (seconds; expired requests
        resolve to a ``DeadlineExceeded`` failure result) and
        ``pass_overrides`` (stage-slot substitutions for preset backends)
        ride along to the service — the semantics are identical in-process
        and remote.

        ``trace`` (a :class:`~repro.obs.Span`, ``SpanContext`` or wire dict;
        default: the calling thread's active span) parents the service's
        span tree there.  Remote submissions reduce the context to its
        ``{"trace_id", "span_id"}`` wire form, so the resulting tree in
        ``result.metadata["trace"]`` is structurally identical to the
        in-process one.
        """
        if self._service is not None:
            return self._service.submit(
                circuit,
                backend,
                device=device,
                objective=objective,
                seed=seed,
                priority=priority,
                deadline=deadline,
                pass_overrides=pass_overrides,
                trace=trace,
            )
        if not isinstance(backend, str):
            # Remote services resolve backends by name against their *own*
            # registry; shipping a live instance across the RPC boundary
            # either fails to pickle cryptically or silently resolves against
            # the wrong registry on the server.  Refuse it loudly instead.
            name = getattr(backend, "name", None)
            if not isinstance(name, str) or not name:
                raise TypeError(
                    "remote submit requires a backend name: the server resolves "
                    "backends against its own registry, so pass a registered name "
                    "(str) or a backend object whose .name is a non-empty str; "
                    f"got {backend!r}"
                )
            backend = name
        device_name = device if isinstance(device, str) or device is None else device.name
        ctx = as_context(trace)
        ticket = self._proxy.submit_request(
            circuit, backend, device_name, objective, seed, priority, deadline,
            pass_overrides, ctx.to_dict() if ctx is not None else None,
        )
        return self._register_ticket(ticket)

    def submit_many(
        self,
        circuits,
        backend: "str | CompilerBackend" = "qiskit-o3",
        *,
        device: "Device | str | None" = None,
        objective: str = "fidelity",
        seed: int = 0,
        priority: int = 0,
        deadline: float | None = None,
        pass_overrides: dict | None = None,
        trace=None,
    ) -> list[Future]:
        """One future per circuit, in input order."""
        # Pin the trace context once so the whole batch shares one parent.
        ctx = as_context(trace)
        return [
            self.submit(
                circuit,
                backend,
                device=device,
                objective=objective,
                seed=seed,
                priority=priority,
                deadline=deadline,
                pass_overrides=pass_overrides,
                trace=ctx,
            )
            for circuit in circuits
        ]

    def result(self, future: Future, timeout: float | None = None):
        """Block on one future from :meth:`submit`/:meth:`submit_many`.

        A wait that outlives ``timeout`` raises :class:`ServiceTimeout`
        carrying the service's queue depth at expiry, so callers can tell a
        backlogged service from one slow request.
        """
        try:
            return future.result(timeout)
        except FutureTimeoutError:
            raise ServiceTimeout(timeout, self._probe_queue_depth()) from None

    def _probe_queue_depth(self) -> int | None:
        """Best-effort queue depth for timeout diagnostics.

        Remote stats are fetched on a throwaway daemon thread with a bounded
        join: a wedged server must not turn a bounded ``result(timeout=...)``
        into an unbounded hang while we gather the error message.
        """
        if self._service is not None:
            try:
                return self._service.stats()["queue_depth"]
            except Exception:  # noqa: BLE001 - depth is best-effort diagnostics
                return None
        box: list = []

        def probe() -> None:
            try:
                box.append(self._proxy.stats()["queue_depth"])
            except Exception:  # noqa: BLE001 - depth is best-effort diagnostics
                pass

        thread = threading.Thread(target=probe, daemon=True)
        thread.start()
        thread.join(timeout=1.0)
        return box[0] if box else None

    def stats(self) -> dict:
        """The service's metrics (queue depth, cache counters, lanes, latency)."""
        if self._service is not None:
            return self._service.stats()
        return self._proxy.stats()

    def ping(self) -> str:
        """The service's name — raises if a remote server is unreachable."""
        if self._service is not None:
            return self._service.ping()
        return self._proxy.ping()

    def health(self) -> dict:
        """The service's readiness snapshot (``status`` / ``ready`` / depth)."""
        if self._service is not None:
            return self._service.health()
        return self._proxy.health()

    def set_draining(self, draining: bool = True) -> None:
        """Flip the service's drain flag (rolling-restart orchestration)."""
        if self._service is not None:
            self._service.set_draining(draining)
        else:
            self._proxy.set_draining(draining)

    def close(self) -> None:
        """Release client-side resources (never stops the service itself).

        Deterministic: the waiter thread is signalled and joined, and any
        still-pending futures fail with a clear error rather than hanging
        their callers forever.  Idempotent.
        """
        self._stop.set()
        self._wake.set()
        waiter = self._waiter
        if waiter is not None and waiter is not threading.current_thread():
            waiter.join(timeout=5.0)
        self._fail_pending(RuntimeError("ServiceClient closed with requests outstanding"))

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "in-process" if self._service is not None else "remote"
        return f"ServiceClient({mode})"
