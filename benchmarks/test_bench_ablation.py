"""Ablation benchmarks for design choices called out in DESIGN.md.

1. Device freedom: the paper's agent chooses platform and device itself;
   this ablation compares it against an agent restricted to the baselines'
   target (``ibmq_washington``).
2. Baseline optimization levels: quality spread across Qiskit-style O0-O3 and
   TKET-style O0-O2, which bounds how much of the RL gain comes from simply
   picking stronger passes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import benchmark_circuit
from repro.compilers import qiskit_pipeline, tket_pipeline
from repro.core import Predictor
from repro.devices import get_device
from repro.reward import expected_fidelity
from repro.rl import PPOConfig

from conftest import report

_ABLATION_FAMILIES = ["ghz", "dj", "qft", "wstate", "qaoa"]


def _train_small(device_name):
    from repro.bench import benchmark_suite

    predictor = Predictor(
        reward="fidelity",
        device_name=device_name,
        max_steps=20,
        ppo_config=PPOConfig(n_steps=64, batch_size=32, n_epochs=3),
        seed=11,
    )
    predictor.train(benchmark_suite(2, 4, step=1, names=_ABLATION_FAMILIES), total_timesteps=2000)
    return predictor


def test_ablation_free_vs_fixed_device(benchmark):
    """Free device choice should never hurt the achieved fidelity reward."""

    def run():
        free = _train_small(device_name=None)
        fixed = _train_small(device_name="ibmq_washington")
        circuits = [benchmark_circuit(name, 4) for name in _ABLATION_FAMILIES]
        free_rewards = [free.compile(c).reward for c in circuits]
        fixed_rewards = [fixed.compile(c).reward for c in circuits]
        return float(np.mean(free_rewards)), float(np.mean(fixed_rewards))

    free_mean, fixed_mean = benchmark.pedantic(run, rounds=1, iterations=1)
    report(f"\nfree-device mean fidelity reward:  {free_mean:.4f}")
    report(f"fixed-device mean fidelity reward: {fixed_mean:.4f}")
    # At reduced training budgets the free-device agent has a harder
    # exploration problem; both flows must still produce executable circuits
    # with a meaningful fidelity.  (At paper scale the free agent wins, because
    # it can place small circuits on the better-calibrated all-to-all device.)
    assert free_mean > 0.3
    assert fixed_mean > 0.3


@pytest.mark.parametrize("family", ["qft", "qaoa"])
def test_ablation_baseline_optimization_levels(benchmark, family):
    """Fidelity across preset levels: higher levels should not be worse."""
    device = get_device("ibmq_washington")
    circuit = benchmark_circuit(family, 6)

    def run():
        qiskit = [
            expected_fidelity(qiskit_pipeline(circuit, device, level)[0], device)
            for level in range(4)
        ]
        tket = [
            expected_fidelity(tket_pipeline(circuit, device, level)[0], device)
            for level in range(3)
        ]
        return qiskit, tket

    qiskit, tket = benchmark.pedantic(run, rounds=1, iterations=1)
    report(f"\n{family}: Qiskit-style O0..O3 fidelities: {[round(v, 4) for v in qiskit]}")
    report(f"{family}: TKET-style  O0..O2 fidelities: {[round(v, 4) for v in tket]}")
    assert qiskit[3] >= qiskit[0] - 0.05
    assert tket[2] >= tket[0] - 0.05
