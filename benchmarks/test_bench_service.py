"""Compile-service benchmark: requests/sec under concurrent clients.

Measures the service layer the way a deployment would see it and writes the
numbers to ``benchmarks/results/BENCH_service.json``:

* **Concurrent clients** — N client threads (N in {1, 4, 8}), each holding a
  :class:`~repro.service.ServiceClient` on one shared
  :class:`~repro.service.CompileService`, submit the same (circuit, backend)
  workload and block on their futures.  Aggregate requests/sec is recorded
  per client count.
* **Cold vs warm shared cache** — each client count runs two waves against
  the same service: the first from an empty cache (compute-bound, overlap
  served by in-flight coalescing), the second re-submitting the identical
  workload (served almost entirely from the shared cache).  The ratio is
  the headline number: it is what a compile-once/reuse-everywhere
  deployment gains from the shared cache.
* **Priority latency** — a saturated single-worker lane fed a mix of
  interactive (priority 5) and batch (priority 0) requests; per-class
  p50/p95 latency quantifies what the QoS scheduler buys an interactive
  caller over FIFO.

``REPRO_BENCH_SMOKE=1`` shrinks the workload so CI keeps the artifact fresh
without burning minutes.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

import numpy as np

from repro.bench import benchmark_circuit
from repro.service import CompileService, ServiceClient

from conftest import report

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
RESULTS_PATH = Path(__file__).resolve().parent / "results" / "BENCH_service.json"

BACKENDS = ["qiskit-o1", "tket-o1"]
CLIENT_COUNTS = (1, 4, 8)


def _bench_circuits():
    width = 4 if SMOKE else 6
    return [
        benchmark_circuit("ghz", width),
        benchmark_circuit("qft", width),
        benchmark_circuit("wstate", width),
    ]


def _client_wave(service: CompileService, circuits, n_clients: int) -> dict:
    """N client threads submit the same workload; returns aggregate requests/sec."""
    errors: list[Exception] = []
    barrier = threading.Barrier(n_clients + 1)

    def one_client() -> None:
        try:
            client = ServiceClient(service)
            barrier.wait(timeout=60)
            futures = [
                client.submit(circuit, backend, device="ibmq_washington")
                for circuit in circuits
                for backend in BACKENDS
            ]
            for future in futures:
                result = future.result(timeout=600)
                assert result.succeeded, result.error
        except Exception as exc:  # noqa: BLE001 - surfaced after join
            errors.append(exc)

    threads = [threading.Thread(target=one_client) for _ in range(n_clients)]
    for thread in threads:
        thread.start()
    barrier.wait(timeout=60)
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    requests = n_clients * len(circuits) * len(BACKENDS)
    return {
        "requests": requests,
        "seconds": round(elapsed, 4),
        "requests_per_sec": round(requests / elapsed, 1),
    }


def _write_results(payload: dict) -> None:
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    data = {}
    if RESULTS_PATH.exists():
        data = json.loads(RESULTS_PATH.read_text())
    data.update(payload)
    data["config"] = {"smoke": SMOKE, "backends": BACKENDS, "cpu_count": os.cpu_count()}
    RESULTS_PATH.write_text(json.dumps(data, indent=1, sort_keys=True))


def test_service_throughput_cold_vs_warm():
    circuits = _bench_circuits()
    clients: dict[str, dict] = {}
    for n_clients in CLIENT_COUNTS:
        with CompileService(max_workers=2) as service:
            cold = _client_wave(service, circuits, n_clients)
            warm = _client_wave(service, circuits, n_clients)
            stats = service.stats()
        clients[str(n_clients)] = {
            "cold": cold,
            "warm": warm,
            "warm_over_cold": round(
                warm["requests_per_sec"] / cold["requests_per_sec"], 2
            ),
            "cache_hits": stats["cache_hits"],
            "coalesced": stats["coalesced"],
            "cache": stats["cache"],
            "mean_latency_seconds": round(stats["latency"]["mean_seconds"], 4),
        }

    _write_results({"clients": clients})
    summary = ", ".join(
        f"n={n}: cold {clients[str(n)]['cold']['requests_per_sec']:.0f} -> "
        f"warm {clients[str(n)]['warm']['requests_per_sec']:.0f} req/s "
        f"(x{clients[str(n)]['warm_over_cold']:.1f})"
        for n in CLIENT_COUNTS
    )
    report(f"\ncompile service: {summary}")

    for n_clients in CLIENT_COUNTS:
        entry = clients[str(n_clients)]
        # Every warm request must be served by the shared cache, and the
        # cold overlap by cache hits or in-flight coalescing.
        workload = n_clients * len(circuits) * len(BACKENDS)
        assert entry["cache_hits"] + entry["coalesced"] >= workload
        if not SMOKE:
            assert entry["warm_over_cold"] >= 2.0, (
                f"warm shared cache delivered only x{entry['warm_over_cold']:.2f} "
                f"over cold compilation at {n_clients} clients"
            )


def test_priority_latency_series():
    """Per-priority-class latency (p50/p95) under a saturated one-worker lane.

    Interleaves batch (priority 0) and interactive (priority 5) requests —
    distinct seeds, so nothing is served by the cache or coalescing — against
    a lane pinned at one worker, and records how much queue-jumping buys the
    interactive class.
    """
    n_per_class = 12 if SMOKE else 40
    circuit = benchmark_circuit("ghz", 4 if SMOKE else 6)
    classes = {"batch": 0, "interactive": 5}
    latencies: dict[str, list[float]] = {name: [] for name in classes}
    lock = threading.Lock()

    with CompileService(max_workers=1, autoscale=False) as service:

        def record(name: str, submitted: float):
            def callback(_future) -> None:
                with lock:
                    latencies[name].append(time.perf_counter() - submitted)

            return callback

        futures = []
        for index in range(n_per_class):
            # Interleave the classes so neither gets a submission-order edge.
            for name, priority in classes.items():
                seed = index * len(classes) + priority  # unique per request
                submitted = time.perf_counter()
                future = service.submit(
                    circuit,
                    "qiskit-o1",
                    device="ibmq_washington",
                    seed=seed,
                    priority=priority,
                )
                future.add_done_callback(record(name, submitted))
                futures.append(future)
        for future in futures:
            assert future.result(timeout=600).succeeded
        stats = service.stats()

    series = {}
    for name in classes:
        samples = np.asarray(latencies[name])
        series[name] = {
            "priority": classes[name],
            "requests": len(samples),
            "p50_seconds": round(float(np.percentile(samples, 50)), 4),
            "p95_seconds": round(float(np.percentile(samples, 95)), 4),
            "mean_seconds": round(float(samples.mean()), 4),
        }
    series["interactive_speedup_p50"] = round(
        series["batch"]["p50_seconds"] / max(series["interactive"]["p50_seconds"], 1e-9), 2
    )
    _write_results({"priority_latency": series})
    report(
        f"\npriority latency (1-worker lane): interactive p50 "
        f"{series['interactive']['p50_seconds']:.3f}s vs batch p50 "
        f"{series['batch']['p50_seconds']:.3f}s "
        f"(x{series['interactive_speedup_p50']:.1f})"
    )

    assert len(latencies["batch"]) == len(latencies["interactive"]) == n_per_class
    assert stats["deadline_exceeded"] == 0
    # The whole point of the priority queue: the interactive class must not
    # wait behind the batch class on a saturated lane.
    assert (
        series["interactive"]["p50_seconds"] <= series["batch"]["p50_seconds"]
    ), "priority scheduling gave interactive requests no latency edge"
