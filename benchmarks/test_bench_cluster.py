"""Cluster-fabric benchmark: requests/sec and cache hit-rate across hosts.

Measures what the multi-node fabric buys a deployment and writes the numbers
to ``benchmarks/results/BENCH_cluster.json``:

* **1 vs 2 hosts** — the same workload served by one compile host, then
  round-robined across two hosts that mount the *same* two TCP cache shards.
  Aggregate requests/sec is recorded per host count.
* **Cold vs warm shards** — each host count runs two waves: the first from
  empty shards (compute-bound), the second re-submitting the identical
  workload.  Warm requests are served from the shared shards no matter which
  host they land on — the cross-host hit-rate is the headline number: it is
  what compile-once/reuse-anywhere costs and gains at cluster scale.

``REPRO_BENCH_SMOKE=1`` shrinks the workload so CI keeps the artifact fresh
without burning minutes.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.bench import benchmark_circuit
from repro.service import (
    CacheServer,
    CompileService,
    ShardedCacheStore,
    SharedCacheStore,
)

from conftest import report

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
RESULTS_PATH = Path(__file__).resolve().parent / "results" / "BENCH_cluster.json"

BACKENDS = ["qiskit-o1", "tket-o1"]
HOST_COUNTS = (1, 2)
N_SHARDS = 2
AUTHKEY = b"bench-cluster-key"


def _bench_circuits():
    width = 4 if SMOKE else 6
    names = ["ghz", "qft"] if SMOKE else ["ghz", "qft", "wstate"]
    return [benchmark_circuit(name, width) for name in names]


def _sharded_store(shards: "list[CacheServer]") -> ShardedCacheStore:
    """A fresh client-side view over the shared TCP shards."""
    return ShardedCacheStore(
        [SharedCacheStore(shard.address, AUTHKEY) for shard in shards]
    )


def _wave(hosts: "list[CompileService]", circuits) -> dict:
    """Round-robin the workload across ``hosts``; returns aggregate req/s."""
    start = time.perf_counter()
    futures = []
    for index, (circuit, backend) in enumerate(
        (circuit, backend) for circuit in circuits for backend in BACKENDS
    ):
        host = hosts[index % len(hosts)]
        futures.append(host.submit(circuit, backend, device="ibmq_washington"))
    for future in futures:
        result = future.result(timeout=600)
        assert result.succeeded, result.error
    elapsed = time.perf_counter() - start
    return {
        "requests": len(futures),
        "seconds": round(elapsed, 4),
        "requests_per_sec": round(len(futures) / elapsed, 1),
    }


def _write_results(payload: dict) -> None:
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    data = {}
    if RESULTS_PATH.exists():
        data = json.loads(RESULTS_PATH.read_text())
    data.update(payload)
    data["config"] = {
        "smoke": SMOKE,
        "backends": BACKENDS,
        "shards": N_SHARDS,
        "cpu_count": os.cpu_count(),
    }
    RESULTS_PATH.write_text(json.dumps(data, indent=1, sort_keys=True))


def test_cluster_throughput_and_hit_rate():
    circuits = _bench_circuits()
    workload = len(circuits) * len(BACKENDS)
    by_hosts: dict[str, dict] = {}

    for n_hosts in HOST_COUNTS:
        shards = [
            CacheServer(maxsize=4096, address=("127.0.0.1", 0), authkey=AUTHKEY)
            for _ in range(N_SHARDS)
        ]
        hosts = [
            CompileService(store=_sharded_store(shards), max_workers=2)
            for _ in range(n_hosts)
        ]
        try:
            cold = _wave(hosts, circuits)
            warm = _wave(hosts, circuits)
            cache = hosts[0].stats()["cache"]
        finally:
            for host in hosts:
                host.shutdown(drain=False)
            for shard in shards:
                shard.shutdown()

        by_hosts[str(n_hosts)] = {
            "cold": cold,
            "warm": warm,
            "warm_over_cold": round(
                warm["requests_per_sec"] / cold["requests_per_sec"], 2
            ),
            "hit_rate": cache["hit_rate"],
            "shard_entries": [row["entries"] for row in cache["shards"]],
            "shards_down": cache["shards_down"],
        }

        # the warm wave must be served by the shared shards — including, at
        # 2 hosts, results the *other* host compiled (cross-host reuse)
        assert cache["hits"] >= workload, cache
        assert cache["shards_down"] == 0
        # the keys must actually spread over the ring, not pile on one shard
        assert sum(1 for row in cache["shards"] if row["entries"]) >= 1

    _write_results({"hosts": by_hosts})
    summary = ", ".join(
        f"hosts={n}: cold {by_hosts[str(n)]['cold']['requests_per_sec']:.0f} -> "
        f"warm {by_hosts[str(n)]['warm']['requests_per_sec']:.0f} req/s "
        f"(hit rate {by_hosts[str(n)]['hit_rate']:.2f})"
        for n in HOST_COUNTS
    )
    report(f"\ncluster fabric ({N_SHARDS} TCP shards): {summary}")

    if not SMOKE:
        for n_hosts in HOST_COUNTS:
            assert by_hosts[str(n_hosts)]["warm_over_cold"] >= 2.0
