"""Shared fixtures for the benchmark harness.

The benchmarks reproduce every table and figure of the paper's evaluation at
a configurable (default: reduced) scale.  Training and comparison data are
computed once per session and shared across the individual benchmark
targets; the per-figure benchmarks then measure and print the corresponding
series.

Scale knobs (environment variables):

* ``REPRO_TRAIN_STEPS``   — PPO timesteps per model (default 6000; paper: 100000)
* ``REPRO_BENCH_QUBITS``  — qubit count for the per-family evaluation circuits (default 5)
* ``REPRO_MAX_QUBITS``    — maximum qubit count of the training suite (default 6)
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.bench import BENCHMARK_GENERATORS, benchmark_circuit, benchmark_suite  # noqa: E402
from repro.core import Predictor  # noqa: E402
from repro.core.training import TrainingConfig, train_all_models  # noqa: E402
from repro.evaluation import compare_predictor  # noqa: E402
from repro.rl import PPOConfig  # noqa: E402

def report(text: str) -> None:
    """Emit reproduction data so it is visible even with pytest output capture on.

    Benchmark runs are typically invoked as ``pytest benchmarks/ --benchmark-only``
    (without ``-s``); writing to the real stdout keeps the regenerated figure
    and table data in the console / ``bench_output.txt`` log, and a copy is
    appended to ``benchmarks/results/latest.txt`` for later inspection.
    """
    print(text, file=sys.__stdout__)
    results_dir = Path(__file__).resolve().parent / "results"
    results_dir.mkdir(exist_ok=True)
    with open(results_dir / "latest.txt", "a", encoding="utf-8") as handle:
        handle.write(text + "\n")


TRAIN_STEPS = int(os.environ.get("REPRO_TRAIN_STEPS", 6000))
BENCH_QUBITS = int(os.environ.get("REPRO_BENCH_QUBITS", 5))
MAX_TRAIN_QUBITS = int(os.environ.get("REPRO_MAX_QUBITS", 6))
BASELINE_DEVICE = os.environ.get("REPRO_BASELINE_DEVICE", "ibmq_washington")


@pytest.fixture(scope="session")
def training_suite():
    """Training circuits (reduced version of the paper's 200-circuit suite)."""
    return benchmark_suite(2, MAX_TRAIN_QUBITS, step=2)


@pytest.fixture(scope="session")
def evaluation_suite():
    """One circuit per benchmark family, at the configured evaluation width."""
    circuits = []
    for family, (_gen, min_qubits) in sorted(BENCHMARK_GENERATORS.items()):
        circuits.append(benchmark_circuit(family, max(BENCH_QUBITS, min_qubits)))
    return circuits


@pytest.fixture(scope="session")
def trained_models(training_suite):
    """One trained model per reward function (fidelity / critical depth / combination)."""
    config = TrainingConfig(
        total_timesteps=TRAIN_STEPS,
        max_steps=25,
        seed=0,
        ppo=PPOConfig(n_steps=128, batch_size=64, n_epochs=4),
    )
    return train_all_models(training_suite, config)


@pytest.fixture(scope="session")
def comparison_records(trained_models, evaluation_suite):
    """RL-vs-baseline comparison records for every reward function."""
    records = {}
    for reward_name, model in trained_models.items():
        records[reward_name] = compare_predictor(
            model, evaluation_suite, baseline_device=BASELINE_DEVICE, seed=0
        )
    return records
