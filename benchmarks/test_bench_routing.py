"""Routing-quality benchmarks: SWAP overhead of the four routers (supporting data).

Not a figure of the paper, but it quantifies the quality differences between
the mapping actions available to the RL agent — the spread that the agent
learns to exploit.
"""

from __future__ import annotations

import pytest

from repro.bench import benchmark_circuit
from repro.devices import get_device
from repro.passes import (
    BasicSwap,
    BasisTranslator,
    PassContext,
    SabreLayout,
    SabreSwap,
    StochasticSwap,
    TketRouting,
)

from conftest import report

_ROUTERS = {
    "basic": BasicSwap,
    "stochastic": StochasticSwap,
    "sabre": SabreSwap,
    "tket": TketRouting,
}


@pytest.mark.parametrize("router_name", sorted(_ROUTERS))
def test_router_swap_overhead_qft10_washington(benchmark, router_name):
    device = get_device("ibmq_washington")
    circuit = benchmark_circuit("qft", 10)
    context = PassContext(device=device, seed=3)
    native = BasisTranslator().run(circuit, context)
    placed = SabreLayout(seed=3).run(native, context)
    router = _ROUTERS[router_name](seed=3)

    def route():
        return router.run(placed, PassContext(device=device, seed=3))

    routed = benchmark(route)
    overhead = routed.num_two_qubit_gates() - native.num_two_qubit_gates()
    report(
        f"\nrouter={router_name}: 2q gates {native.num_two_qubit_gates()} -> "
        f"{routed.num_two_qubit_gates()} (overhead {overhead})"
    )
    assert device.mapping_satisfied(routed)
