"""Table I: cross-evaluation of the three trained models under all three rewards.

Regenerates the paper's Table I: the model trained for a given reward
function should achieve the best average value of that reward among the
three models (diagonal dominance of the matrix).
"""

from __future__ import annotations

from repro.evaluation import cross_model_rewards, format_table1

from conftest import report


def test_table1_cross_model_rewards(benchmark, trained_models, evaluation_suite):
    table = benchmark.pedantic(
        cross_model_rewards, args=(trained_models, evaluation_suite), rounds=1, iterations=1
    )
    report("\n=== Table I (cross-model average rewards) ===")
    report(format_table1(table))
    assert table.values.shape == (len(trained_models), len(trained_models))
    assert (table.values >= 0).all() and (table.values <= 1).all()
