"""HTTP gateway benchmark: requests/sec and per-tenant latency over real HTTP.

Measures the public surface the way an external caller would see it and
writes the numbers to ``benchmarks/results/BENCH_gateway.json``:

* **Concurrent HTTP clients** — N tenants (N in {1, 4, 8}), each holding a
  :class:`~repro.gateway.GatewayClient` over its own API key against one
  :class:`~repro.gateway.GatewayServer`, submit the same (circuit, backend)
  workload through synchronous ``POST /v1/compile`` calls.  Aggregate
  requests/sec is recorded per client count for a cold and a warm wave,
  plus client-observed per-tenant p50/p95 latency on the warm wave (where
  the HTTP layer, not compilation, dominates).
* **Gateway overhead vs direct ServiceClient** — the identical warmed
  workload through a direct in-process :class:`~repro.service.ServiceClient`
  and through the HTTP gateway; the per-request delta is the cost of the
  JSON/HTTP/auth/fair-share stack.

``REPRO_BENCH_SMOKE=1`` shrinks the workload so CI keeps the artifact fresh
without burning minutes.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

import numpy as np

from repro.bench import benchmark_circuit
from repro.gateway import GatewayClient, GatewayServer, Tenant
from repro.service import CompileService, ServiceClient

from conftest import report

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
RESULTS_PATH = Path(__file__).resolve().parent / "results" / "BENCH_gateway.json"

BACKENDS = ["qiskit-o1", "tket-o1"]
CLIENT_COUNTS = (1, 4, 8)


def _bench_circuits():
    width = 4 if SMOKE else 6
    return [
        benchmark_circuit("ghz", width),
        benchmark_circuit("qft", width),
        benchmark_circuit("wstate", width),
    ]


def _tenants(n: int) -> list:
    return [Tenant(f"client{i}", f"bench-key-{i}") for i in range(n)]


def _client_wave(gateway: GatewayServer, circuits, n_clients: int) -> dict:
    """N tenants hammer ``POST /v1/compile`` concurrently; returns aggregate
    requests/sec plus per-tenant client-observed latency quantiles."""
    errors: list[Exception] = []
    latencies: dict[str, list[float]] = {f"client{i}": [] for i in range(n_clients)}
    barrier = threading.Barrier(n_clients + 1)

    def one_client(index: int) -> None:
        try:
            client = GatewayClient(gateway.url, api_key=f"bench-key-{index}", timeout=600)
            samples = latencies[f"client{index}"]
            barrier.wait(timeout=60)
            for circuit in circuits:
                for backend in BACKENDS:
                    begin = time.perf_counter()
                    result = client.compile(
                        circuit, backend, device="ibmq_washington", timeout=600
                    )
                    samples.append(time.perf_counter() - begin)
                    assert result.succeeded, result.error
        except Exception as exc:  # noqa: BLE001 - surfaced after join
            errors.append(exc)

    threads = [
        threading.Thread(target=one_client, args=(i,)) for i in range(n_clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait(timeout=60)
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    requests = n_clients * len(circuits) * len(BACKENDS)
    per_tenant = {
        name: {
            "p50_seconds": round(float(np.percentile(samples, 50)), 4),
            "p95_seconds": round(float(np.percentile(samples, 95)), 4),
        }
        for name, samples in latencies.items()
    }
    return {
        "requests": requests,
        "seconds": round(elapsed, 4),
        "requests_per_sec": round(requests / elapsed, 1),
        "per_tenant": per_tenant,
    }


def _write_results(payload: dict) -> None:
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    data = {}
    if RESULTS_PATH.exists():
        data = json.loads(RESULTS_PATH.read_text())
    data.update(payload)
    data["config"] = {"smoke": SMOKE, "backends": BACKENDS, "cpu_count": os.cpu_count()}
    RESULTS_PATH.write_text(json.dumps(data, indent=1, sort_keys=True))


def test_gateway_throughput():
    circuits = _bench_circuits()
    clients: dict[str, dict] = {}
    for n_clients in CLIENT_COUNTS:
        with CompileService(max_workers=2) as service:
            with GatewayServer(
                service, tenants=_tenants(n_clients), sample_interval=0
            ) as gateway:
                cold = _client_wave(gateway, circuits, n_clients)
                warm = _client_wave(gateway, circuits, n_clients)
                counters = gateway.counters()
            stats = service.stats()
        clients[str(n_clients)] = {
            "cold": cold,
            "warm": warm,
            "warm_over_cold": round(
                warm["requests_per_sec"] / cold["requests_per_sec"], 2
            ),
            "jobs_completed": counters["jobs_completed"],
            "cache_hits": stats["cache_hits"],
            "coalesced": stats["coalesced"],
        }
        # The gateway must not lose or duplicate work at any concurrency.
        workload = 2 * n_clients * len(circuits) * len(BACKENDS)
        assert counters["jobs_submitted"] == workload
        assert counters["jobs_completed"] == workload
        assert counters["rate_limited"] == 0

    _write_results({"clients": clients})
    summary = ", ".join(
        f"n={n}: cold {clients[str(n)]['cold']['requests_per_sec']:.0f} -> "
        f"warm {clients[str(n)]['warm']['requests_per_sec']:.0f} req/s"
        for n in CLIENT_COUNTS
    )
    report(f"\nhttp gateway: {summary}")

    for n_clients in CLIENT_COUNTS:
        entry = clients[str(n_clients)]
        # Warm-wave requests are answered by the shared cache through the
        # whole HTTP stack; each tenant must still see sane quantiles.
        for tenant in entry["warm"]["per_tenant"].values():
            assert tenant["p50_seconds"] <= tenant["p95_seconds"]


def test_gateway_overhead_vs_direct():
    """Same warmed workload via in-process ServiceClient vs the HTTP gateway;
    the per-request delta prices the JSON/HTTP/auth/fair-share stack."""
    repeats = 3 if SMOKE else 10
    circuits = _bench_circuits()
    workload = [(circuit, backend) for circuit in circuits for backend in BACKENDS]

    with CompileService(max_workers=2) as service:
        direct = ServiceClient(service)
        # Warm the shared cache so both paths measure dispatch, not compilation.
        for circuit, backend in workload:
            future = direct.submit(circuit, backend, device="ibmq_washington")
            assert future.result(timeout=600).succeeded

        direct_samples = []
        for _ in range(repeats):
            for circuit, backend in workload:
                begin = time.perf_counter()
                future = direct.submit(circuit, backend, device="ibmq_washington")
                result = future.result(timeout=600)
                direct_samples.append(time.perf_counter() - begin)
                assert result.metadata.get("cached")

        with GatewayServer(
            service, tenants=_tenants(1), sample_interval=0
        ) as gateway:
            client = GatewayClient(gateway.url, api_key="bench-key-0", timeout=600)
            gateway_samples = []
            for _ in range(repeats):
                for circuit, backend in workload:
                    begin = time.perf_counter()
                    result = client.compile(
                        circuit, backend, device="ibmq_washington", timeout=600
                    )
                    gateway_samples.append(time.perf_counter() - begin)
                    assert result.metadata.get("cached")

    direct_mean = float(np.mean(direct_samples))
    gateway_mean = float(np.mean(gateway_samples))
    overhead = {
        "requests": len(gateway_samples),
        "direct_mean_ms": round(direct_mean * 1e3, 3),
        "direct_p95_ms": round(float(np.percentile(direct_samples, 95)) * 1e3, 3),
        "gateway_mean_ms": round(gateway_mean * 1e3, 3),
        "gateway_p95_ms": round(float(np.percentile(gateway_samples, 95)) * 1e3, 3),
        "overhead_ms_per_request": round((gateway_mean - direct_mean) * 1e3, 3),
    }
    _write_results({"overhead_vs_direct": overhead})
    report(
        f"\ngateway overhead: direct {overhead['direct_mean_ms']:.2f}ms vs "
        f"http {overhead['gateway_mean_ms']:.2f}ms per cached request "
        f"(+{overhead['overhead_ms_per_request']:.2f}ms)"
    )

    # The HTTP stack should cost milliseconds, not a second, per request.
    assert overhead["overhead_ms_per_request"] < 1000
