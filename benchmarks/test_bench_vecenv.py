"""Vectorised-environment benchmark: fleet stepping throughput + batch executors.

Measures the two parallel-execution paths this layer adds and writes the
numbers to ``benchmarks/results/BENCH_vecenv.json``:

* **Fleet stepping** — aggregate env-steps/sec of a synchronised
  :func:`~repro.rl.vecenv.make_compilation_vec_env` fleet (``n_envs`` in
  {1, 2, 4}) driving the same scripted compilation flow, against the
  single-environment loop PPO used before vectorisation (one default
  :class:`~repro.core.CompilationEnv`, stream-drawn pass seeds, private
  caches).  The fleet's multiplier on a single core comes from work
  sharing: members use state-keyed pass seeds and share one
  ``AnalysisCache`` + ``TransformCache``, so a pass applied to a circuit
  state any member has visited is not recomputed — exactly the redundancy
  real rollouts have (same training circuits every epoch, converging
  policies replaying the same flows).
* **Batch executors** — ``compile_batch`` wall time, ``executor="thread"``
  vs ``executor="process"`` (cold caches).  On a single-core container the
  process pool's pickling round trip makes it slower; the number is
  recorded either way so multi-core CI shows the real ratio.

``REPRO_BENCH_SMOKE=1`` shrinks everything to one repetition (CI keeps the
artifact fresh without burning minutes).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.api.batch import compile_batch
from repro.bench import benchmark_circuit
from repro.core import CompilationEnv
from repro.rl import make_compilation_vec_env

import numpy as np

from conftest import report

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
EPOCHS = 1 if SMOKE else 4  # scripted epochs per fleet member
RESULTS_PATH = Path(__file__).resolve().parent / "results" / "BENCH_vecenv.json"

#: fixed, always-valid flow (same as the pipeline benchmark's hot loop)
SCRIPTED_FLOW = [
    "synthesis_basis_translator",
    "optimize_optimize_1q_gates",
    "map_dense_layout_sabre_routing",
    "optimize_cx_cancellation",
    "optimize_optimize_1q_gates",
    "optimize_commutative_cancellation",
    "optimize_inverse_cancellation",
    "optimize_remove_redundancies",
    "terminate",
]


def _bench_circuits():
    width = 5 if SMOKE else 8
    return [
        benchmark_circuit("qft", width),
        benchmark_circuit("su2random", width),
        benchmark_circuit("qftentangled", width),
    ]


def _write_results(section: str, payload: dict) -> None:
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    data = {}
    if RESULTS_PATH.exists():
        data = json.loads(RESULTS_PATH.read_text())
    data[section] = payload
    data["config"] = {"smoke": SMOKE, "epochs": EPOCHS}
    RESULTS_PATH.write_text(json.dumps(data, indent=1, sort_keys=True))


def _single_env_loop(circuits, episodes: int) -> dict:
    """The pre-vectorisation rollout loop: one default env, one episode at a time."""
    env = CompilationEnv(
        circuits, device_name="ibmq_washington", max_steps=25, seed=3
    )
    steps = 0
    start = time.perf_counter()
    for _episode in range(episodes):
        env.reset()
        for name in SCRIPTED_FLOW:
            action = env.action_by_name(name)
            _obs, _reward, terminated, truncated, _info = env.step(action.index)
            steps += 1
            if terminated or truncated:
                break
    elapsed = time.perf_counter() - start
    return {"steps": steps, "seconds": round(elapsed, 4), "steps_per_sec": round(steps / elapsed, 1)}


def _fleet_loop(circuits, n_envs: int, episodes_per_member: int) -> dict:
    """Lockstep scripted rollouts over a work-sharing sync fleet."""
    vec = make_compilation_vec_env(
        circuits, n_envs, device_name="ibmq_washington", max_steps=25, seed=3
    )
    member = vec.envs[0]
    steps = 0
    start = time.perf_counter()
    vec.reset(seed=3)
    for _episode in range(episodes_per_member):
        for name in SCRIPTED_FLOW:
            index = member.action_by_name(name).index
            _obs, _rewards, terminated, truncated, _infos = vec.step(
                np.full(n_envs, index)
            )
            steps += n_envs
            if (terminated | truncated).all():
                break  # the fleet auto-resets; next loop starts fresh episodes
    elapsed = time.perf_counter() - start
    payload = {
        "steps": steps,
        "seconds": round(elapsed, 4),
        "steps_per_sec": round(steps / elapsed, 1),
        "transform_cache": member.transform_cache.stats(),
        "analysis_cache": member.analysis_cache.stats(),
    }
    vec.close()
    return payload


def test_fleet_stepping_throughput():
    circuits = _bench_circuits()
    episodes_per_member = EPOCHS * len(circuits)

    single = _single_env_loop(circuits, episodes_per_member)
    fleet: dict[str, dict] = {}
    speedups: dict[str, float] = {}
    for n_envs in (1, 2, 4):
        result = _fleet_loop(circuits, n_envs, episodes_per_member)
        fleet[str(n_envs)] = result
        speedups[str(n_envs)] = round(
            result["steps_per_sec"] / single["steps_per_sec"], 3
        )

    payload = {
        "single_env_loop": single,
        "fleet": fleet,
        "speedup_vs_single": speedups,
    }
    _write_results("env_stepping", payload)
    report(
        "\nvecenv stepping: single {0:.0f} steps/s; fleet "
        "n=1 {1:.0f}, n=2 {2:.0f}, n=4 {3:.0f} steps/s "
        "(speedup x{4:.2f}/x{5:.2f}/x{6:.2f}; n=4 transform hit rate {7:.0%})".format(
            single["steps_per_sec"],
            fleet["1"]["steps_per_sec"],
            fleet["2"]["steps_per_sec"],
            fleet["4"]["steps_per_sec"],
            speedups["1"],
            speedups["2"],
            speedups["4"],
            fleet["4"]["transform_cache"]["hit_rate"],
        )
    )
    # Smoke runs on shared CI runners stay assertion-free; the acceptance
    # ratio is checked where timing is meaningful.
    if not SMOKE:
        assert speedups["4"] >= 2.0, (
            f"SyncVectorEnv(n_envs=4) delivered only x{speedups['4']:.2f} "
            "env-steps/sec over the single-env loop"
        )


def test_batch_executor_thread_vs_process():
    circuits = _bench_circuits()
    backends = ["qiskit-o1", "tket-o1"]
    timings = {}
    rewards = {}
    for executor in ("thread", "process"):
        start = time.perf_counter()
        batch = compile_batch(
            circuits,
            backends,
            device="ibmq_washington",
            cache=None,
            executor=executor,
            max_workers=2,
        )
        timings[executor] = round(time.perf_counter() - start, 4)
        assert not batch.failures
        rewards[executor] = [round(r.reward, 9) for r in batch]

    # Both executors must compile to identical results.
    assert rewards["thread"] == rewards["process"]

    payload = {
        "thread_seconds": timings["thread"],
        "process_seconds": timings["process"],
        "process_over_thread": round(timings["process"] / timings["thread"], 2),
        "cpu_count": os.cpu_count(),
    }
    _write_results("batch_executor", payload)
    report(
        f"batch executor: thread {timings['thread']:.2f}s, "
        f"process {timings['process']:.2f}s on {os.cpu_count()} core(s)"
    )
