"""Training-throughput benchmark (supporting data for the paper's runtime claim).

The paper reports training runtimes "of the order of hours" for 100 000
timesteps; this benchmark measures PPO steps/second of this implementation so
the full-scale runtime can be extrapolated from the reduced-scale run.
"""

from __future__ import annotations

import time

from repro.bench import benchmark_suite
from repro.core import CompilationEnv
from repro.rl import PPO, PPOConfig

from conftest import report


def test_ppo_training_throughput(benchmark):
    circuits = benchmark_suite(2, 4, step=1, names=["ghz", "dj", "qft", "wstate"])
    env = CompilationEnv(circuits, reward="fidelity", max_steps=20, seed=1)
    agent = PPO(env, PPOConfig(n_steps=64, batch_size=32, n_epochs=3), seed=1)
    timesteps = 500

    def train_chunk():
        start = time.perf_counter()
        agent.learn(agent.num_timesteps + timesteps)
        return time.perf_counter() - start

    elapsed = benchmark.pedantic(train_chunk, rounds=1, iterations=1)
    rate = timesteps / elapsed
    report(f"\nPPO training throughput: {rate:.1f} env steps/second")
    report(f"extrapolated time for the paper's 100k timesteps: {100_000 / rate / 60:.1f} minutes")
    assert rate > 5
