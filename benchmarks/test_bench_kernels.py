"""Numeric-kernel benchmark: batched hot paths vs the scalar loops they replaced.

Measures the three loops the kernel layer vectorises and writes before/after
series to ``benchmarks/results/BENCH_kernels.json``:

* **1q resynthesis** — ``Optimize1qGatesDecomposition`` with the batched
  ``(N, 2, 2)`` kernels vs the per-run scalar ``_resynthesize`` reference,
  in gates/sec over native-gate benchmark circuits.  Outputs are asserted
  identical (the golden traces depend on it).
* **feature extraction** — ``feature_vectors_batch`` (one instruction-table
  sweep per circuit) vs the legacy path (five per-feature circuit walks plus
  a DAG build), in circuits/sec over the benchmark suite.  Values are
  asserted equal.
* **redundancy removal** — the incremental-worklist ``RemoveRedundancies``
  vs the fixed point of the full-resweep reference on deep circuits.
* **SABRE routing** — wall time per circuit width with the vectorised swap
  scorer (series only; the scalar scorer is gone).

``REPRO_BENCH_SMOKE=1`` shrinks everything to one repetition (used by CI to
keep the artifact fresh without burning minutes); throughput-ratio
assertions only run unsmoked.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path

import numpy as np

from repro.bench import benchmark_circuit, benchmark_suite
from repro.circuit import QuantumCircuit
from repro.circuit.gates import Gate, Instruction
from repro.devices import get_device
from repro.features import feature_vectors_batch
from repro.features.supermarq import (
    critical_depth,
    entanglement_ratio,
    liveness,
    parallelism,
    program_communication,
)
from repro.passes import (
    BasisTranslator,
    Optimize1qGatesDecomposition,
    PassContext,
    RemoveRedundancies,
    SabreLayout,
    SabreSwap,
)

from conftest import report

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
TIMING_ROUNDS = 1 if SMOKE else 3
RESULTS_PATH = Path(__file__).resolve().parent / "results" / "BENCH_kernels.json"


def _write_results(section: str, payload: dict) -> None:
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    data = {}
    if RESULTS_PATH.exists():
        data = json.loads(RESULTS_PATH.read_text())
    data[section] = payload
    data["config"] = {"smoke": SMOKE, "timing_rounds": TIMING_ROUNDS}
    RESULTS_PATH.write_text(json.dumps(data, indent=1, sort_keys=True))


def _best_rate(fn, items: int) -> tuple[float, float]:
    """(best items/sec, best seconds) of ``fn`` over TIMING_ROUNDS runs."""
    best = math.inf
    for _round in range(TIMING_ROUNDS):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return items / best, best


# ---------------------------------------------------------------------------
# 1q resynthesis: batched kernels vs the scalar per-run reference
# ---------------------------------------------------------------------------


def _scalar_resynthesize_batch(runs, basis):
    """The pre-kernel loop: one scalar ``_resynthesize`` call per run."""
    return [
        Optimize1qGatesDecomposition._resynthesize(run, qubit, basis)
        for run, qubit in runs
    ]


def _native_1q_heavy_circuits() -> list[QuantumCircuit]:
    device = get_device("ibmq_washington")
    width = 5 if SMOKE else 8
    translator = BasisTranslator()
    context = PassContext(device=device)
    return [
        translator.run(benchmark_circuit(name, width), context)
        for name in (["qft"] if SMOKE else ["qft", "su2random", "qftentangled", "vqe"])
    ]


def _collect_1q_runs(circuits) -> list[tuple[list[Instruction], int]]:
    """The runs the pass would resynthesise, captured through its own sweep."""
    captured: list[tuple[list[Instruction], int]] = []
    original = Optimize1qGatesDecomposition._resynthesize_batch

    def capture(cls, runs, basis):
        captured.extend(runs)
        return original.__func__(cls, runs, basis)

    Optimize1qGatesDecomposition._resynthesize_batch = classmethod(capture)
    try:
        pass_ = Optimize1qGatesDecomposition(basis="rz_sx")
        for circuit in circuits:
            pass_.run(circuit, PassContext())
    finally:
        Optimize1qGatesDecomposition._resynthesize_batch = original
    return captured


def test_1q_resynthesis_throughput():
    circuits = _native_1q_heavy_circuits()
    runs = _collect_1q_runs(circuits)
    total_gates = sum(len(run) for run, _qubit in runs)
    basis = "rz_sx"

    batched = Optimize1qGatesDecomposition._resynthesize_batch(runs, basis)
    batched_rate, batched_secs = _best_rate(
        lambda: Optimize1qGatesDecomposition._resynthesize_batch(runs, basis), total_gates
    )
    scalar = _scalar_resynthesize_batch(runs, basis)
    scalar_rate, scalar_secs = _best_rate(
        lambda: _scalar_resynthesize_batch(runs, basis), total_gates
    )

    # The speedup must never come at the cost of the pinned semantics.
    assert [
        [(i.name, i.params, i.qubits) for i in replacement] for replacement in batched
    ] == [[(i.name, i.params, i.qubits) for i in replacement] for replacement in scalar]

    ratio = batched_rate / scalar_rate
    payload = {
        "runs": len(runs),
        "gates": total_gates,
        "before_gates_per_sec": round(scalar_rate, 1),
        "after_gates_per_sec": round(batched_rate, 1),
        "before_seconds": round(scalar_secs, 4),
        "after_seconds": round(batched_secs, 4),
        "speedup_ratio": round(ratio, 2),
    }
    _write_results("resynthesis_1q", payload)
    report(
        f"\n1q resynthesis ({len(runs)} runs, {total_gates} gates): batched "
        f"{batched_rate:.0f} gates/s vs scalar {scalar_rate:.0f} gates/s (x{ratio:.1f})"
    )
    if not SMOKE:
        assert ratio >= 3.0, f"batched 1q resynthesis only x{ratio:.2f} over the scalar loop"


# ---------------------------------------------------------------------------
# Feature extraction: single-sweep table vs the legacy per-feature walks
# ---------------------------------------------------------------------------


def _legacy_feature_vector(circuit: QuantumCircuit) -> np.ndarray:
    """The pre-kernel observation path: one circuit walk per feature.

    Replicates the old ``feature_dict`` readout exactly — ``{0}`` fallback
    allocation, ``circuit.depth()``, and the five standalone SupermarQ
    functions (``critical_depth`` builds a DAG per call).
    """
    num_active = len(circuit.active_qubits() or {0})
    depth = circuit.depth()
    return np.array(
        [
            min(1.0, num_active / 130.0),
            0.0 if depth <= 0 else min(1.0, math.log1p(depth) / math.log1p(10_000.0)),
            program_communication(circuit),
            critical_depth(circuit),
            entanglement_ratio(circuit),
            parallelism(circuit),
            liveness(circuit),
        ]
    )


def test_feature_extraction_throughput():
    suite = benchmark_suite(2, 4 if SMOKE else 8, step=2)

    batch = feature_vectors_batch(suite)
    batched_rate, batched_secs = _best_rate(
        lambda: feature_vectors_batch(suite), len(suite)
    )

    legacy = np.stack([_legacy_feature_vector(c) for c in suite])
    legacy_rate, legacy_secs = _best_rate(
        lambda: [_legacy_feature_vector(c) for c in suite], len(suite)
    )

    assert np.array_equal(batch, legacy)

    ratio = batched_rate / legacy_rate
    payload = {
        "circuits": len(suite),
        "before_circuits_per_sec": round(legacy_rate, 1),
        "after_circuits_per_sec": round(batched_rate, 1),
        "before_seconds": round(legacy_secs, 4),
        "after_seconds": round(batched_secs, 4),
        "speedup_ratio": round(ratio, 2),
    }
    _write_results("feature_extraction", payload)
    report(
        f"feature extraction: batched {batched_rate:.0f} circuits/s vs "
        f"legacy {legacy_rate:.0f} circuits/s (x{ratio:.1f})"
    )
    if not SMOKE:
        assert ratio >= 2.0, f"batched feature extraction only x{ratio:.2f} over the legacy walks"


# ---------------------------------------------------------------------------
# RemoveRedundancies: incremental worklist vs full-resweep fixed point
# ---------------------------------------------------------------------------


def _deep_redundant_circuit(num_qubits: int, depth: int, seed: int) -> QuantumCircuit:
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits, name="deep")
    for _ in range(depth):
        kind = int(rng.integers(0, 5))
        q = int(rng.integers(num_qubits))
        if kind == 0:
            circuit.append_instruction(
                Instruction(Gate(str(rng.choice(["h", "x", "s", "sdg", "t"]))), (q,))
            )
        elif kind == 1:
            angle = float(rng.choice([0.0, 0.25, -0.25, np.pi]))
            circuit.append_instruction(
                Instruction(Gate(str(rng.choice(["rz", "rx", "ry"])), (angle,)), (q,))
            )
        elif kind == 2 and num_qubits > 1:
            r = int(rng.integers(num_qubits - 1))
            circuit.append_instruction(Instruction(Gate("cx"), (r, r + 1)))
        else:
            circuit.append_instruction(
                Instruction(Gate("rz", (float(rng.uniform(-1, 1)),)), (q,))
            )
    return circuit


def _reference_fixed_point(pass_: RemoveRedundancies, circuit: QuantumCircuit):
    instructions = [i for i in circuit if i.name != "id"]
    changed = True
    while changed:
        instructions, changed = pass_._single_pass(instructions)
    return instructions


def _cascade_circuit(num_qubits: int, tower_depth: int, stable_depth: int) -> QuantumCircuit:
    """A deep circuit whose rewrites cascade on one wire over many sweeps.

    Qubit 0 carries a palindrome tower — each sweep can only cancel the
    innermost adjacent pair, so the fixed point needs ``tower_depth`` sweeps.
    The other wires carry stable (non-cancelling) gates that a full resweep
    re-examines every sweep and the worklist skips after the first.
    """
    rng = np.random.default_rng(9)
    inverses = {"s": "sdg", "t": "tdg", "h": "h", "x": "x"}
    half = [str(rng.choice(list(inverses))) for _ in range(tower_depth)]
    tower = half + [inverses[name] for name in reversed(half)]
    circuit = QuantumCircuit(num_qubits, name="cascade")
    stable_cycle = ["h", "t", "s", "h", "tdg"]
    tower_iter = iter(tower)
    for layer in range(stable_depth):
        for q in range(1, num_qubits):
            circuit.append_instruction(
                Instruction(Gate(stable_cycle[(layer + q) % len(stable_cycle)]), (q,))
            )
        gate_name = next(tower_iter, None)
        if gate_name is not None:
            circuit.append_instruction(Instruction(Gate(gate_name), (0,)))
    for gate_name in tower_iter:
        circuit.append_instruction(Instruction(Gate(gate_name), (0,)))
    return circuit


def test_remove_redundancies_incremental():
    cascade = _cascade_circuit(
        num_qubits=8, tower_depth=10 if SMOKE else 40, stable_depth=60 if SMOKE else 400
    )
    random_deep = _deep_redundant_circuit(num_qubits=6, depth=400 if SMOKE else 4000, seed=5)
    pass_ = RemoveRedundancies()
    context = PassContext()

    payload = {}
    for label, circuit in (("cascade", cascade), ("random_deep", random_deep)):
        incremental = pass_.run(circuit, context)
        incremental_rate, incremental_secs = _best_rate(
            lambda: pass_.run(circuit, context), len(circuit)
        )
        reference = _reference_fixed_point(pass_, circuit)
        reference_rate, reference_secs = _best_rate(
            lambda: _reference_fixed_point(pass_, circuit), len(circuit)
        )
        assert [(i.name, i.params, i.qubits) for i in incremental] == [
            (i.name, i.params, i.qubits) for i in reference
        ]
        ratio = incremental_rate / reference_rate
        payload[label] = {
            "input_gates": len(circuit),
            "output_gates": len(incremental),
            "before_gates_per_sec": round(reference_rate, 1),
            "after_gates_per_sec": round(incremental_rate, 1),
            "before_seconds": round(reference_secs, 4),
            "after_seconds": round(incremental_secs, 4),
            "speedup_ratio": round(ratio, 2),
        }
        report(
            f"remove_redundancies [{label}]: incremental {incremental_rate:.0f} gates/s "
            f"vs resweep {reference_rate:.0f} gates/s (x{ratio:.1f})"
        )
    _write_results("remove_redundancies", payload)
    if not SMOKE:
        # Cascading rewrites are where the worklist pays for itself; on
        # few-sweep random circuits it must at least not be a regression.
        assert payload["cascade"]["speedup_ratio"] >= 1.5
        assert payload["random_deep"]["speedup_ratio"] >= 0.8


# ---------------------------------------------------------------------------
# SABRE routing wall time vs circuit width (vectorised swap scorer)
# ---------------------------------------------------------------------------


def test_sabre_routing_wall_time_by_width():
    device = get_device("ibmq_washington")
    widths = [4] if SMOKE else [4, 6, 8, 10]
    series = {}
    for width in widths:
        circuit = benchmark_circuit("qftentangled", width)
        native = BasisTranslator().run(circuit, PassContext(device=device))

        def route():
            context = PassContext(device=device, seed=1)
            placed = SabreLayout(seed=1).run(native, context)
            return SabreSwap(seed=1).run(placed, context)

        routed = route()
        assert device.mapping_satisfied(routed)
        _rate, secs = _best_rate(route, 1)
        series[str(width)] = round(secs, 4)
    _write_results("sabre_routing_seconds_by_width", series)
    report(f"sabre routing wall time by width: {series}")
