"""Fig. 3d-f: average reward difference per benchmark family.

Each benchmark regenerates one per-family bar-chart panel of the paper's
Fig. 3 (d: fidelity, e: critical depth, f: combination): the mean
``RL reward - baseline reward`` for every one of the 22 benchmark families,
against Qiskit-O3 and TKET-O2.
"""

from __future__ import annotations

import pytest

from repro.evaluation import format_per_benchmark, per_benchmark_differences

from conftest import report


def _report(metric, data):
    report(f"\n=== Fig. 3 per-benchmark panel ({metric}) ===")
    report(format_per_benchmark(data))


@pytest.mark.parametrize("metric", ["fidelity"])
def test_fig3d_fidelity_per_benchmark(benchmark, comparison_records, metric):
    records = comparison_records[metric]
    data = benchmark.pedantic(per_benchmark_differences, args=(records,), rounds=1, iterations=1)
    _report(metric, data)
    assert len(data.benchmarks) == len({r.benchmark for r in records})


@pytest.mark.parametrize("metric", ["critical_depth"])
def test_fig3e_critical_depth_per_benchmark(benchmark, comparison_records, metric):
    records = comparison_records[metric]
    data = benchmark.pedantic(per_benchmark_differences, args=(records,), rounds=1, iterations=1)
    _report(metric, data)
    assert data.mean_diff_qiskit.shape == data.mean_diff_tket.shape


@pytest.mark.parametrize("metric", ["combination"])
def test_fig3f_combination_per_benchmark(benchmark, comparison_records, metric):
    records = comparison_records[metric]
    data = benchmark.pedantic(per_benchmark_differences, args=(records,), rounds=1, iterations=1)
    _report(metric, data)
    assert len(data.benchmarks) > 0
