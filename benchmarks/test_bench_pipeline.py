"""Pipeline-layer benchmark: RL env stepping and preset wall time, cache on/off.

Measures the two hot paths the pipeline refactor targets and writes the
numbers to ``benchmarks/results/BENCH_pipeline.json`` so per-PR regressions
are visible:

* **Env stepping** — a fixed, scripted compilation flow executed over
  repeated episodes of :class:`~repro.core.CompilationEnv`, once with the
  shared :class:`~repro.pipeline.AnalysisCache` (the default) and once
  bypassed.  Every PPO step of a training run pays this cost; the cache
  serves the per-step feature extraction and executability checks from
  fingerprint-keyed entries.  The action sequence and all observations are
  identical in both modes — only the speed may differ.
* **Preset pipelines** — cold wall time per preset level, plus the speedup
  of re-sweeping the same circuits through ``compile_batch`` with the
  result LRU cache warm vs. disabled.

Scale knobs: ``REPRO_BENCH_SMOKE=1`` shrinks everything to one repetition
(used by CI to keep the benchmark artifact fresh without burning minutes).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.api.batch import CompilationCache, compile_batch
from repro.bench import benchmark_circuit
from repro.compilers import qiskit_pipeline, tket_pipeline
from repro.core import CompilationEnv
from repro.devices import get_device

from conftest import report

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
EPISODES = 1 if SMOKE else 6
TIMING_ROUNDS = 1 if SMOKE else 2
RESULTS_PATH = Path(__file__).resolve().parent / "results" / "BENCH_pipeline.json"

#: a fixed, always-valid compilation flow (the same one in both cache modes)
SCRIPTED_FLOW = [
    "synthesis_basis_translator",
    "optimize_optimize_1q_gates",
    "map_dense_layout_sabre_routing",
    "optimize_cx_cancellation",
    "optimize_optimize_1q_gates",
    "optimize_commutative_cancellation",
    "optimize_inverse_cancellation",
    "optimize_remove_redundancies",
    "terminate",
]


def _bench_circuits():
    width = 5 if SMOKE else 8
    return [
        benchmark_circuit("qft", width),
        benchmark_circuit("su2random", width),
        benchmark_circuit("qftentangled", width),
    ]


def _scripted_rollout(circuits, *, use_cache: bool):
    """Run the scripted flow for EPISODES episodes; return steps, time, trajectory."""
    env = CompilationEnv(
        circuits,
        reward="fidelity",
        device_name="ibmq_washington",
        max_steps=25,
        seed=3,
        use_analysis_cache=use_cache,
    )
    steps = 0
    trajectory: list[str] = []
    start = time.perf_counter()
    for _episode in range(EPISODES * len(circuits)):
        env.reset(seed=3)
        for name in SCRIPTED_FLOW:
            action = env.action_by_name(name)
            _obs, _reward, terminated, truncated, _info = env.step(action.index)
            steps += 1
            if terminated or truncated:
                break
        trajectory.extend(env.state.applied_actions)
    elapsed = time.perf_counter() - start
    stats = env.analysis_cache.stats() if env.analysis_cache is not None else None
    return steps, elapsed, trajectory, stats


def _write_results(section: str, payload: dict) -> None:
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    data = {}
    if RESULTS_PATH.exists():
        data = json.loads(RESULTS_PATH.read_text())
    data[section] = payload
    data["config"] = {"smoke": SMOKE, "episodes": EPISODES}
    RESULTS_PATH.write_text(json.dumps(data, indent=1, sort_keys=True))


def test_env_stepping_cached_vs_bypassed():
    circuits = _bench_circuits()
    best: dict[str, dict] = {}
    trajectories: dict[str, list[str]] = {}
    for mode, use_cache in (("cached", True), ("bypassed", False)):
        for _round in range(TIMING_ROUNDS):
            steps, elapsed, trajectory, stats = _scripted_rollout(circuits, use_cache=use_cache)
            rate = steps / elapsed
            if mode not in best or rate > best[mode]["steps_per_sec"]:
                best[mode] = {
                    "steps": steps,
                    "seconds": round(elapsed, 4),
                    "steps_per_sec": round(rate, 1),
                }
                if stats is not None:
                    best[mode]["analysis_cache"] = stats
            trajectories[mode] = trajectory

    # The cache must never change the compilation flow itself.
    assert trajectories["cached"] == trajectories["bypassed"]

    ratio = best["cached"]["steps_per_sec"] / best["bypassed"]["steps_per_sec"]
    payload = {**best, "speedup_ratio": round(ratio, 3)}
    _write_results("env_stepping", payload)
    report(
        f"\nenv stepping: cached {best['cached']['steps_per_sec']:.0f} steps/s, "
        f"bypassed {best['bypassed']['steps_per_sec']:.0f} steps/s "
        f"(speedup x{ratio:.2f}, hit rate "
        f"{best['cached']['analysis_cache']['hit_rate']:.0%})"
    )
    # No tight wall-clock assertion: this file runs inside the blocking tier-1
    # suite and shared CI runners are noisy.  Guard only against the cache
    # being a catastrophic slowdown; the real ratio lives in the JSON artifact.
    if not SMOKE:
        assert ratio > 0.5, f"analysis cache made env stepping far slower (x{ratio:.2f})"


def test_preset_pipeline_wall_time():
    device = get_device("ibmq_washington")
    circuit = benchmark_circuit("qft", 5 if SMOKE else 7)
    levels = {}
    for style, pipeline, max_level in (("qiskit", qiskit_pipeline, 3), ("tket", tket_pipeline, 2)):
        for level in range(max_level + 1):
            start = time.perf_counter()
            for _round in range(TIMING_ROUNDS):
                pipeline(circuit, device, level, seed=0)
            levels[f"{style}-o{level}"] = round((time.perf_counter() - start) / TIMING_ROUNDS, 4)

    # Re-sweeping the same circuits: result-LRU warm vs. caching disabled.
    circuits = _bench_circuits()
    backends = ["qiskit-o3", "tket-o2"]
    cache = CompilationCache()
    compile_batch(circuits, backends, device=device, cache=cache)  # warm it
    start = time.perf_counter()
    warm = compile_batch(circuits, backends, device=device, cache=cache, max_workers=1)
    warm_time = time.perf_counter() - start
    start = time.perf_counter()
    cold = compile_batch(circuits, backends, device=device, cache=None, max_workers=1)
    cold_time = time.perf_counter() - start
    assert all(r.succeeded for r in warm) and all(r.succeeded for r in cold)
    resweep_ratio = cold_time / warm_time if warm_time > 0 else float("inf")

    payload = {
        "cold_wall_time_seconds": levels,
        "resweep": {
            "warm_seconds": round(warm_time, 4),
            "cold_seconds": round(cold_time, 4),
            "speedup_ratio": round(resweep_ratio, 1),
        },
    }
    _write_results("preset_pipelines", payload)
    report(
        f"preset wall time (s): {levels}; warm re-sweep speedup x{resweep_ratio:.0f}"
    )
    if not SMOKE:
        assert resweep_ratio > 2.0
