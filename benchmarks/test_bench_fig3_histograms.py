"""Fig. 3a-c: histograms of the reward difference between the RL compiler and the baselines.

Each benchmark regenerates one panel of the paper's Fig. 3: the distribution
of ``RL reward - baseline reward`` over the benchmark suite, for Qiskit-O3
and TKET-O2, under the respective optimization objective.  The headline
percentages ("outperforms Qiskit/TKET in X% of cases") are printed alongside.
"""

from __future__ import annotations

import pytest

from repro.evaluation import format_histogram, reward_difference_histogram, summarize

from conftest import report


def _run_panel(records):
    histogram = reward_difference_histogram(records)
    summary = summarize(records)
    return histogram, summary


def _report(metric, histogram, summary):
    report(f"\n=== Fig. 3 panel ({metric}) ===")
    report(summary.format_table())
    report(format_histogram(histogram))


@pytest.mark.parametrize("metric", ["fidelity"])
def test_fig3a_fidelity_histogram(benchmark, comparison_records, metric):
    records = comparison_records[metric]
    histogram, summary = benchmark.pedantic(
        _run_panel, args=(records,), rounds=1, iterations=1
    )
    _report(metric, histogram, summary)
    assert abs(histogram.qiskit_frequencies.sum() - 1.0) < 1e-9
    assert summary.num_circuits == len(records)


@pytest.mark.parametrize("metric", ["critical_depth"])
def test_fig3b_critical_depth_histogram(benchmark, comparison_records, metric):
    records = comparison_records[metric]
    histogram, summary = benchmark.pedantic(
        _run_panel, args=(records,), rounds=1, iterations=1
    )
    _report(metric, histogram, summary)
    assert abs(histogram.tket_frequencies.sum() - 1.0) < 1e-9


@pytest.mark.parametrize("metric", ["combination"])
def test_fig3c_combination_histogram(benchmark, comparison_records, metric):
    records = comparison_records[metric]
    histogram, summary = benchmark.pedantic(
        _run_panel, args=(records,), rounds=1, iterations=1
    )
    _report(metric, histogram, summary)
    assert summary.num_circuits == len(records)
