"""Micro-benchmarks of individual compilation passes (runtime, not in the paper).

These measure the runtime of each action available to the RL agent on
representative circuits — useful for understanding the cost of an RL episode
and for catching performance regressions in the pass implementations.
"""

from __future__ import annotations

import pytest

from repro.bench import benchmark_circuit
from repro.circuit import random_circuit
from repro.devices import get_device
from repro.passes import (
    BasisTranslator,
    CommutativeCancellation,
    FullPeepholeOptimise,
    Optimize1qGatesDecomposition,
    PassContext,
    RemoveRedundancies,
    SabreLayout,
    SabreSwap,
    TrivialLayout,
)

_OPTIMIZATION_PASSES = {
    "optimize_1q": Optimize1qGatesDecomposition,
    "commutative_cancellation": CommutativeCancellation,
    "remove_redundancies": RemoveRedundancies,
    "full_peephole": FullPeepholeOptimise,
}


@pytest.mark.parametrize("pass_name", sorted(_OPTIMIZATION_PASSES))
def test_optimization_pass_runtime_qft8(benchmark, pass_name):
    circuit = benchmark_circuit("qft", 8)
    pass_ = _OPTIMIZATION_PASSES[pass_name]()
    result = benchmark(pass_.run, circuit, PassContext())
    assert result.num_two_qubit_gates() <= circuit.num_two_qubit_gates()


def test_basis_translation_runtime_washington(benchmark):
    device = get_device("ibmq_washington")
    circuit = benchmark_circuit("su2random", 8)
    result = benchmark(BasisTranslator().run, circuit, PassContext(device=device))
    assert device.gates_native(result)


def test_sabre_mapping_runtime_washington(benchmark):
    device = get_device("ibmq_washington")
    circuit = benchmark_circuit("qftentangled", 10)
    native = BasisTranslator().run(circuit, PassContext(device=device))

    def map_circuit():
        context = PassContext(device=device, seed=1)
        placed = SabreLayout(seed=1).run(native, context)
        return SabreSwap(seed=1).run(placed, context)

    routed = benchmark(map_circuit)
    assert device.mapping_satisfied(routed)


def test_trivial_mapping_runtime_washington(benchmark):
    device = get_device("ibmq_washington")
    circuit = random_circuit(10, 12, seed=2)
    native = BasisTranslator().run(circuit, PassContext(device=device))

    def map_circuit():
        context = PassContext(device=device, seed=1)
        placed = TrivialLayout().run(native, context)
        return SabreSwap(seed=1).run(placed, context)

    routed = benchmark(map_circuit)
    assert device.mapping_satisfied(routed)
