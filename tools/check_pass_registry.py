#!/usr/bin/env python
"""CI lint: every concrete pass in ``repro.passes`` must be registered.

Walks every module under ``src/repro/passes/``, finds the concrete public
:class:`~repro.passes.base.BasePass` subclasses defined there, and fails if

* a pass class is not registered in the pass registry under its ``name``
  (a pass that ships unregistered is invisible to overrides and to the RL
  action space), or
* a pass class's ``name`` resolves to a *different* factory in the registry
  (a shadowed registration — two classes competing for one name), or
* two classes declare the same ``name`` attribute.

Private helpers (``_``-prefixed), abstract classes, and the framework types
(:class:`BasePass` itself, :class:`PassSequence`, the role mixins) are
exempt — they are infrastructure, not registrable stage substitutes.

Usage: ``python tools/check_pass_registry.py`` (exit code 1 on violations).
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro.passes as passes_pkg  # noqa: E402
from repro.passes.base import BasePass, PassSequence  # noqa: E402
from repro.passes.registry import (  # noqa: E402
    FinalisationPass,
    LayoutPass,
    OptimizationPass,
    RoutingPass,
    SynthesisPass,
    UnknownPassError,
    pass_factory,
)

#: framework types that are BasePass subclasses but not registrable passes
_EXEMPT = {
    BasePass,
    PassSequence,
    SynthesisPass,
    LayoutPass,
    RoutingPass,
    OptimizationPass,
    FinalisationPass,
}


def iter_pass_classes():
    """Yield (module_name, class) for every BasePass subclass under repro.passes."""
    prefix = passes_pkg.__name__ + "."
    modules = [passes_pkg.__name__]
    for info in pkgutil.walk_packages(passes_pkg.__path__, prefix):
        modules.append(info.name)
    seen: set[type] = set()
    for module_name in modules:
        module = importlib.import_module(module_name)
        for _attr, obj in sorted(vars(module).items()):
            if not (inspect.isclass(obj) and issubclass(obj, BasePass)):
                continue
            if obj.__module__ != module_name or obj in seen:
                continue  # report each class where it is defined, once
            seen.add(obj)
            yield module_name, obj


def check() -> list[str]:
    errors: list[str] = []
    by_name: dict[str, type] = {}
    for module_name, cls in iter_pass_classes():
        if cls in _EXEMPT or cls.__name__.startswith("_") or inspect.isabstract(cls):
            continue
        name = cls.name
        if name in by_name and by_name[name] is not cls:
            errors.append(
                f"{module_name}.{cls.__name__}: name {name!r} is also declared by "
                f"{by_name[name].__module__}.{by_name[name].__name__}"
            )
        by_name.setdefault(name, cls)
        try:
            factory = pass_factory(name)
        except UnknownPassError:
            errors.append(
                f"{module_name}.{cls.__name__}: concrete pass {name!r} is not "
                "registered — add register_pass() next to the class definition"
            )
            continue
        if factory is not cls:
            errors.append(
                f"{module_name}.{cls.__name__}: registry name {name!r} resolves to "
                f"{factory!r}, which shadows this class"
            )
    return errors


def main() -> int:
    errors = check()
    if errors:
        print(f"pass-registry lint: {len(errors)} violation(s)")
        for error in errors:
            print(f"  - {error}")
        return 1
    print("pass-registry lint: all concrete passes registered, no shadowed names")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
