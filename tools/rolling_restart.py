#!/usr/bin/env python
"""Rolling restart of a repro compile cluster with zero lost requests.

Drives :func:`repro.service.rolling_restart` against remote hosts: each host
is drained (``set_draining`` RPC), polled to quiescence, bounced with the
user-supplied restart command, and re-admitted once its ``health()`` RPC
reports ready — one host at a time, so the cluster keeps serving throughout.

Usage::

    python tools/rolling_restart.py \\
        --host hostA:7707 --host hostB:7707 \\
        --authkey-file svc.key \\
        --restart-cmd 'ssh {host} systemctl restart repro-service'

``--restart-cmd`` is a shell command template; ``{host}`` and ``{port}`` are
substituted per host.  Without it the driver runs in drain-check mode: each
host is drained to quiescence and immediately re-admitted, which validates
the drain path (and your load balancer's reaction) without bouncing anything.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
import time
from pathlib import Path

# Allow running from a source checkout without installation.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.service import RollingRestartError, ServiceClient, rolling_restart  # noqa: E402


def _parse_endpoint(value: str) -> tuple[str, int]:
    host, sep, port = value.rpartition(":")
    if not sep or not host:
        raise argparse.ArgumentTypeError(f"expected HOST:PORT, got {value!r}")
    try:
        return host, int(port)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid port in {value!r}") from None


def _connect(address: tuple[str, int], authkey: bytes, timeout: float) -> ServiceClient:
    """A client for ``address``, retrying while the host boots."""
    deadline = time.monotonic() + timeout
    while True:
        try:
            client = ServiceClient(address=address, authkey=authkey)
            client.ping()
            return client
        except Exception:  # noqa: BLE001 - not up yet
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.5)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Drain, restart, and re-admit each compile host in turn."
    )
    parser.add_argument(
        "--host",
        dest="hosts",
        type=_parse_endpoint,
        action="append",
        required=True,
        metavar="HOST:PORT",
        help="compile host to cycle (repeatable; cycled in the given order)",
    )
    parser.add_argument(
        "--authkey-file",
        required=True,
        metavar="PATH",
        help="file holding the cluster's hex-encoded service secret",
    )
    parser.add_argument(
        "--restart-cmd",
        default=None,
        help="shell command template bouncing one host; {host} and {port} are "
        "substituted (omit for drain-check mode: drain + re-admit, no bounce)",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=120.0,
        help="seconds to wait for a draining host to finish accepted work",
    )
    parser.add_argument(
        "--ready-timeout",
        type=float,
        default=60.0,
        help="seconds to wait for a restarted host to report ready",
    )
    args = parser.parse_args(argv)

    text = Path(args.authkey_file).read_text().strip()
    try:
        authkey = bytes.fromhex(text)
    except ValueError:
        parser.error(f"authkey file {args.authkey_file} is not hex-encoded")

    addresses = {f"{host}:{port}": (host, port) for host, port in args.hosts}
    hosts = {}
    for name, address in addresses.items():
        client = _connect(address, authkey, timeout=5.0)
        print(f"[{name}] connected ({client.ping()})")
        hosts[name] = client

    def restart(name: str, handle: ServiceClient) -> ServiceClient:
        host, port = addresses[name]
        if args.restart_cmd is None:
            print(f"[{name}] drain-check mode: no restart command, re-admitting")
            return handle
        command = args.restart_cmd.format(host=host, port=port)
        print(f"[{name}] running: {command}")
        subprocess.run(command, shell=True, check=True)
        handle.close()
        return _connect((host, port), authkey, timeout=args.ready_timeout)

    try:
        reports = rolling_restart(
            hosts,
            restart,
            drain_timeout=args.drain_timeout,
            ready_timeout=args.ready_timeout,
            on_event=print,
        )
    except RollingRestartError as exc:
        print(f"rolling restart aborted: {exc}", file=sys.stderr)
        return 1
    finally:
        for client in hosts.values():
            try:
                client.close()
            except Exception:  # noqa: BLE001
                pass

    print("rolling restart complete:")
    for report in reports:
        print(
            f"  {report.host}: drained {report.unfinished_at_drain} requests in "
            f"{report.drain_seconds:.2f}s, restart {report.restart_seconds:.2f}s, "
            f"ready after {report.ready_seconds:.2f}s"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
