#!/usr/bin/env python
"""CI lint: the Prometheus exposition must be well-formed.

Renders a synthetic but fully-populated ``/metrics`` page (service stats with
lanes and profiling counters, gateway counters, tenant stats, a latency
window with observations across several buckets, and a health payload),
parses it line by line, and fails if

* a metric family is declared twice (duplicate ``HELP``/``TYPE``) or has a
  ``TYPE`` without ``HELP`` (or vice versa),
* a ``TYPE`` names something other than ``counter`` / ``gauge`` /
  ``histogram`` / ``summary``,
* a family name ends in ``_total`` but is not a counter, or is a counter and
  does not end in ``_total``,
* a ``_bucket`` / ``_sum`` / ``_count`` sample does not belong to a declared
  histogram family (or a histogram family is missing one of the three),
* a sample line does not belong to any declared family, or its value does
  not parse as a number,
* a histogram's ``le`` buckets are not cumulative (non-decreasing) or the
  ``+Inf`` bucket disagrees with ``_count``.

Usage: ``python tools/check_metrics.py`` (exit code 1 on violations).
"""

from __future__ import annotations

import math
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.gateway.metrics import LatencyWindow, render_prometheus  # noqa: E402

_VALID_TYPES = {"counter", "gauge", "histogram", "summary"}
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)(?P<labels>\{[^}]*\})?\s+(?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def synthetic_exposition() -> str:
    """Render a ``/metrics`` page exercising every family the gateway emits."""
    latency = LatencyWindow(window=64)
    for label, values in {
        "tenant:alice": [0.003, 0.02, 0.09, 0.4, 1.7, 12.0],
        "priority:0": [0.001, 0.05, 0.05, 0.3],
    }.items():
        for value in values:
            latency.observe(label, value)
    service_stats = {
        "submitted": 12,
        "completed": 10,
        "failed": 1,
        "queue_depth": 2,
        "in_flight": 1,
        "cache": {"hit_rate": 0.5},
        "lanes": {
            "qiskit-o3": {"workers": 2, "queue_depth": 1},
            "tket-o2": {"workers": 1, "queue_depth": 0},
        },
        "profiling": {
            "enabled": True,
            "counters": {
                "stage.routing": {"calls": 4, "total_seconds": 0.12, "items": 96},
                "resynth.1q": {"calls": 9, "total_seconds": 0.03, "items": 0},
            },
        },
    }
    return render_prometheus(
        service_stats,
        gateway_counters={"requests": 14, "errors": 1, "rate_limited": 2},
        tenant_stats={
            "alice": {"served": 9, "rate_limited": 1},
            "bob": {"served": 3, "rate_limited": 1},
        },
        latency=latency,
        health={"status": "ok"},
    )


def _family_of(sample_name: str, families: dict) -> "str | None":
    """The declared family a sample belongs to, honouring histogram children."""
    if sample_name in families:
        return sample_name
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if base in families:
                return base
    return None


def check(text: str) -> list[str]:
    errors: list[str] = []
    families: dict[str, dict] = {}  # name -> {"help": bool, "type": str | None}
    samples: list[tuple[str, dict, float]] = []

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            name = line.split()[2]
            entry = families.setdefault(name, {"help": False, "type": None})
            if entry["help"]:
                errors.append(f"line {lineno}: duplicate HELP for {name}")
            entry["help"] = True
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            name, kind = parts[2], parts[3]
            entry = families.setdefault(name, {"help": False, "type": None})
            if entry["type"] is not None:
                errors.append(f"line {lineno}: duplicate TYPE for {name}")
            if kind not in _VALID_TYPES:
                errors.append(f"line {lineno}: unknown TYPE {kind!r} for {name}")
            entry["type"] = kind
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            errors.append(f"line {lineno}: unparseable sample line: {line!r}")
            continue
        try:
            value = float(match.group("value"))
        except ValueError:
            errors.append(f"line {lineno}: non-numeric value in: {line!r}")
            continue
        labels = dict(_LABEL_RE.findall(match.group("labels") or ""))
        samples.append((match.group("name"), labels, value))

    for name, entry in sorted(families.items()):
        if not entry["help"]:
            errors.append(f"{name}: TYPE declared without HELP")
        if entry["type"] is None:
            errors.append(f"{name}: HELP declared without TYPE")
            continue
        if name.endswith("_total") and entry["type"] != "counter":
            errors.append(f"{name}: ends in _total but TYPE is {entry['type']}")
        if entry["type"] == "counter" and not name.endswith("_total"):
            errors.append(f"{name}: counter families must end in _total")

    seen_families: set[str] = set()
    for name, labels, _value in samples:
        family = _family_of(name, families)
        if family is None:
            errors.append(f"{name}: sample does not belong to any declared family")
            continue
        seen_families.add(family)
        kind = families[family]["type"]
        if name != family and kind != "histogram":
            errors.append(
                f"{name}: histogram-style child of {family}, whose TYPE is {kind}"
            )
        if name == family and kind == "histogram":
            errors.append(f"{name}: bare sample for histogram family (needs a suffix)")

    for name, entry in sorted(families.items()):
        if name not in seen_families:
            errors.append(f"{name}: family declared but has no samples")
        if entry["type"] != "histogram":
            continue
        # Group this histogram's children by label set (minus `le`).
        by_series: dict[tuple, dict] = {}
        for sample_name, labels, value in samples:
            if _family_of(sample_name, families) != name:
                continue
            key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
            series = by_series.setdefault(key, {"buckets": [], "sum": None, "count": None})
            if sample_name.endswith("_bucket"):
                le = labels.get("le")
                if le is None:
                    errors.append(f"{name}: _bucket sample without an le label")
                    continue
                bound = math.inf if le == "+Inf" else float(le)
                series["buckets"].append((bound, value))
            elif sample_name.endswith("_sum"):
                series["sum"] = value
            elif sample_name.endswith("_count"):
                series["count"] = value
        for key, series in sorted(by_series.items()):
            where = f"{name}{{{', '.join(f'{k}={v}' for k, v in key)}}}"
            if not series["buckets"]:
                errors.append(f"{where}: histogram series without _bucket samples")
                continue
            if series["sum"] is None or series["count"] is None:
                errors.append(f"{where}: histogram series missing _sum or _count")
                continue
            buckets = sorted(series["buckets"])
            if buckets[-1][0] != math.inf:
                errors.append(f"{where}: histogram series missing the +Inf bucket")
                continue
            counts = [count for _bound, count in buckets]
            if any(b > a for a, b in zip(counts[1:], counts)):
                errors.append(f"{where}: bucket counts are not cumulative")
            if buckets[-1][1] != series["count"]:
                errors.append(
                    f"{where}: +Inf bucket ({buckets[-1][1]:g}) disagrees with "
                    f"_count ({series['count']:g})"
                )
    return errors


def main() -> int:
    text = synthetic_exposition()
    errors = check(text)
    if errors:
        print(f"metrics lint: {len(errors)} violation(s)")
        for error in errors:
            print(f"  - {error}")
        return 1
    families = len(re.findall(r"^# TYPE ", text, flags=re.M))
    print(f"metrics lint: {families} families well-formed (names, types, histograms)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
